//! Counted tables (bag relations with derivation counts).

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};

/// An in-memory relation.
///
/// Tuples are stored with a *derivation count*, exactly as required by
/// counting-based incremental view maintenance and the DRed algorithm the paper
/// adopts for incremental grounding (§3.1): "for each relation `R_i` … we create a
/// delta relation `Rδ_i` with the same schema … and an additional column `count`".
/// Base tables normally hold count 1 per tuple; materialized views hold the number
/// of alternative derivations, so deleting one derivation does not delete the
/// tuple while another derivation survives.
/// Rows are kept in a `BTreeMap` so iteration order is the tuple order —
/// every downstream consumer (view maintenance, grounding, variable/weight id
/// assignment) is then deterministic per seed, which the samplers' "runs are
/// reproducible" guarantee depends on.  A `HashMap` here made grounding order
/// — and therefore learned models — vary per *process*.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: BTreeMap<Tuple, i64>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: BTreeMap::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct tuples currently present (count > 0).
    pub fn len(&self) -> usize {
        self.rows.values().filter(|&&c| c > 0).count()
    }

    /// True if no tuple is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total multiplicity (sum of positive counts).
    pub fn total_count(&self) -> i64 {
        self.rows.values().filter(|&&c| c > 0).sum()
    }

    /// Insert a tuple with multiplicity 1, schema-checked.
    pub fn insert(&mut self, tuple: Tuple) -> RelResult<()> {
        self.insert_with_count(tuple, 1)
    }

    /// Insert a tuple with the given multiplicity (may be negative: a deletion).
    pub fn insert_with_count(&mut self, tuple: Tuple, count: i64) -> RelResult<()> {
        if !self.schema.check(tuple.values()) {
            return Err(RelError::SchemaMismatch {
                table: self.name.clone(),
                detail: format!("tuple {tuple} does not match schema"),
            });
        }
        self.merge_unchecked(tuple, count);
        Ok(())
    }

    /// Merge a count without schema checking (internal fast path for operators
    /// whose output schema is constructed to match by construction).
    pub(crate) fn merge_unchecked(&mut self, tuple: Tuple, count: i64) {
        if count == 0 {
            return;
        }
        match self.rows.entry(tuple) {
            Entry::Occupied(mut e) => {
                let v = e.get_mut();
                *v += count;
                if *v == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                e.insert(count);
            }
        }
    }

    /// Delete one derivation of a tuple.  Returns `true` if the tuple was present.
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        match self.rows.get_mut(tuple) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.rows.remove(tuple);
                }
                true
            }
            _ => false,
        }
    }

    /// Remove all derivations of a tuple, returning the previous count.
    pub fn remove_all(&mut self, tuple: &Tuple) -> i64 {
        self.rows.remove(tuple).unwrap_or(0)
    }

    /// Current multiplicity of a tuple (0 when absent).
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.rows.get(tuple).copied().unwrap_or(0)
    }

    /// True if the tuple is present with positive multiplicity.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.count(tuple) > 0
    }

    /// Iterate over present tuples (count > 0).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().filter(|(_, &c)| c > 0).map(|(t, _)| t)
    }

    /// Iterate over every stored `(tuple, net count)` pair, *including*
    /// negative (over-deleted) counts — exact-state access for persistence.
    /// Zero counts are never stored, so every yielded count is non-zero.
    pub fn iter_net_counted(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.rows.iter().map(|(t, &c)| (t, c))
    }

    /// Iterate over `(tuple, count)` pairs with positive count.
    pub fn iter_counted(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.rows
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(t, &c)| (t, c))
    }

    /// Collect all present tuples into a vector (sorted, which is also the
    /// natural iteration order of the underlying map).
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// Remove every tuple.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Build an index from the values of `key_cols` to the tuples holding them.
    /// Used by the hash-join operator and by grounding.
    pub fn index_on(&self, key_cols: &[usize]) -> HashMap<Vec<Value>, Vec<Tuple>> {
        let mut index: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        for t in self.iter() {
            index.entry(t.key(key_cols)).or_default().push(t.clone());
        }
        index
    }

    /// Bulk-load tuples with count 1 (schema-checked, stops at the first error).
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> RelResult<usize> {
        let mut n = 0;
        for t in tuples {
            self.insert(t)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::tuple;

    fn people() -> Table {
        Table::new(
            "PersonCandidate",
            Schema::of(&[
                ("sentence_id", DataType::Int),
                ("mention_id", DataType::Int),
            ]),
        )
    }

    #[test]
    fn insert_and_contains() {
        let mut t = people();
        t.insert(tuple![1i64, 10i64]).unwrap();
        t.insert(tuple![1i64, 11i64]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.contains(&tuple![1i64, 10i64]));
        assert!(!t.contains(&tuple![2i64, 10i64]));
    }

    #[test]
    fn schema_checked_insert() {
        let mut t = people();
        let err = t.insert(tuple!["not an int", 10i64]).unwrap_err();
        assert!(matches!(err, RelError::SchemaMismatch { .. }));
    }

    #[test]
    fn counts_accumulate_and_cancel() {
        let mut t = people();
        t.insert(tuple![1i64, 10i64]).unwrap();
        t.insert(tuple![1i64, 10i64]).unwrap();
        assert_eq!(t.count(&tuple![1i64, 10i64]), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_count(), 2);

        assert!(t.delete(&tuple![1i64, 10i64]));
        assert!(t.contains(&tuple![1i64, 10i64]));
        assert!(t.delete(&tuple![1i64, 10i64]));
        assert!(!t.contains(&tuple![1i64, 10i64]));
        assert!(!t.delete(&tuple![1i64, 10i64]));
    }

    #[test]
    fn negative_counts_via_merge() {
        let mut t = people();
        t.insert_with_count(tuple![1i64, 10i64], 3).unwrap();
        t.insert_with_count(tuple![1i64, 10i64], -3).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn index_on_groups_by_key() {
        let mut t = people();
        t.insert(tuple![1i64, 10i64]).unwrap();
        t.insert(tuple![1i64, 11i64]).unwrap();
        t.insert(tuple![2i64, 12i64]).unwrap();
        let idx = t.index_on(&[0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[&vec![Value::Int(1)]].len(), 2);
        assert_eq!(idx[&vec![Value::Int(2)]].len(), 1);
    }

    #[test]
    fn sorted_tuples_is_deterministic() {
        let mut t = people();
        t.insert(tuple![2i64, 1i64]).unwrap();
        t.insert(tuple![1i64, 2i64]).unwrap();
        let v = t.sorted_tuples();
        assert_eq!(v[0], tuple![1i64, 2i64]);
        assert_eq!(v[1], tuple![2i64, 1i64]);
    }

    #[test]
    fn extend_bulk_loads() {
        let mut t = people();
        let n = t
            .extend((0..5).map(|i| tuple![i as i64, (i * 10) as i64]))
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn remove_all_and_clear() {
        let mut t = people();
        t.insert_with_count(tuple![1i64, 1i64], 4).unwrap();
        assert_eq!(t.remove_all(&tuple![1i64, 1i64]), 4);
        t.insert(tuple![2i64, 2i64]).unwrap();
        t.clear();
        assert!(t.is_empty());
    }
}

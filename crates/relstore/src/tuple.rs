//! Tuples (rows) of values.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row of values.
///
/// Tuples are the unit of storage in [`crate::Table`], the unit of change in
/// [`crate::DeltaRelation`], and — after grounding — each tuple of a user
/// relation corresponds to one Boolean random variable of the factor graph
/// (paper §2.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Build a tuple from anything convertible to `Value`.
    pub fn from_iter<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the tuple and return its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project onto the given indices (missing indices are skipped).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices
                .iter()
                .filter_map(|&i| self.values.get(i).cloned())
                .collect(),
        }
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }

    /// Extract a key — the values at `indices` — used for hash joins.
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices
            .iter()
            .filter_map(|&i| self.values.get(i).cloned())
            .collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Shorthand macro for building tuples in tests and examples.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from_iter([Value::Int(1), Value::text("obama")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(1).and_then(|v| v.as_text()), Some("obama"));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn macro_builds_mixed_tuples() {
        let t = tuple![1i64, "spouse", true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1).and_then(|v| v.as_text()), Some("spouse"));
        assert_eq!(t.get(2).and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn project_and_concat() {
        let a = tuple![1i64, "x"];
        let b = tuple![2i64, "y"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        let p = c.project(&[3, 0]);
        assert_eq!(p, tuple!["y", 1i64]);
    }

    #[test]
    fn key_extraction() {
        let t = tuple![10i64, "a", 20i64];
        assert_eq!(t.key(&[0, 2]), vec![Value::Int(10), Value::Int(20)]);
        // out-of-range indices are skipped rather than panicking
        assert_eq!(t.key(&[5]), Vec::<Value>::new());
    }

    #[test]
    fn display_formats_row() {
        let t = tuple![1i64, "b"];
        assert_eq!(t.to_string(), "(1, b)");
    }

    #[test]
    fn tuples_are_hashable_and_ordered() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(tuple![1i64, "a"]);
        s.insert(tuple![1i64, "a"]);
        s.insert(tuple![2i64, "a"]);
        assert_eq!(s.len(), 2);

        let mut v = vec![tuple![2i64], tuple![1i64]];
        v.sort();
        assert_eq!(v[0], tuple![1i64]);
    }
}

//! Typed scalar values stored in relations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string (interned via `Arc<str>` so copies are cheap).
    Text,
    /// Boolean.
    Bool,
    /// 64-bit float.  Only used for probabilities and weights; never used as a
    /// join key, so the lack of `Eq` on `f64` is handled by bit-level equality.
    Float,
    /// Null / missing.
    Null,
}

/// A scalar value.
///
/// Values are small and cheap to clone; strings are reference counted so the
/// same mention/feature string shared across millions of tuples is stored once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Text(Arc<str>),
    Bool(bool),
    Float(f64),
    Null,
}

impl Value {
    /// Data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Text(_) => DataType::Text,
            Value::Bool(_) => DataType::Bool,
            Value::Float(_) => DataType::Float,
            Value::Null => DataType::Null,
        }
    }

    /// Construct a text value.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Return the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Return the string payload if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Return the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Return the float payload if this is a `Float` (or an `Int`, widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // Bit-level equality: values are only compared for joins/dedup, where
            // reflexivity matters more than IEEE NaN semantics.
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Text(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                2u8.hash(state);
                b.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Null => 4u8.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Float(_) => 3,
                Text(_) => 4,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Null, Null) => Ordering::Equal,
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::text("x").data_type(), DataType::Text);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Float(0.5).data_type(), DataType::Float);
        assert_eq!(Value::Null.data_type(), DataType::Null);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert!(Value::Null.is_null());
        assert_eq!(Value::text("hi").as_int(), None);
    }

    #[test]
    fn equality_and_hash_consistency() {
        let a = Value::text("spouse");
        let b = Value::text("spouse");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));

        let f1 = Value::Float(0.25);
        let f2 = Value::Float(0.25);
        assert_eq!(f1, f2);
        assert_eq!(hash_of(&f1), hash_of(&f2));
    }

    #[test]
    fn cross_type_values_are_not_equal() {
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_ne!(Value::Int(0), Value::Null);
        assert_ne!(Value::text("1"), Value::Int(1));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = vec![
            Value::text("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Int(1),
            Value::text("a"),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::text("a"));
        assert_eq!(vals[5], Value::text("b"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(String::from("y")), Value::text("y"));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::text("obama").to_string(), "obama");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}

//! Conjunctive (rule-shaped) queries and incrementally maintained views.
//!
//! Grounding in DeepDive is "a series of SQL queries" whose bodies are
//! conjunctions of user relations (§2.2, §3.1).  This module provides:
//!
//! * [`ConjunctiveQuery`] — `head(vars) :- atom_1, …, atom_k, filters`, where each
//!   atom binds variables against a relation and may be negated;
//! * a full evaluator producing a counted result relation;
//! * [`MaterializedView`] — a stored result that can be refreshed from scratch or
//!   maintained incrementally from [`DeltaRelation`]s with the classic counting /
//!   DRed delta-rule evaluation the paper adopts from Gupta–Mumick–Subrahmanian.
//!
//! The delta rule implemented here is the textbook one: for an update touching
//! relations `R_{i1}, …`, the view delta is the sum over changed atoms `i` of the
//! query with atom `i` replaced by its delta, atoms before `i` evaluated against
//! the *new* state, and atoms after `i` against the *old* state.  Counts may be
//! negative (deletions); applying the delta to the stored counted result gives the
//! new view contents without recomputation.

use crate::database::Database;
use crate::delta::DeltaRelation;
use crate::error::{RelError, RelResult};
use crate::schema::{Column, DataType, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A term in a query atom: a variable name or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Term {
    Var(String),
    Const(Value),
}

impl Term {
    /// Convenience constructor for variables.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }
    /// Convenience constructor for constants.
    pub fn val(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }
}

/// One atom of a rule body: `relation(term, term, …)`, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryAtom {
    pub relation: String,
    pub terms: Vec<Term>,
    pub negated: bool,
}

impl QueryAtom {
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        QueryAtom {
            relation: relation.into(),
            terms,
            negated: false,
        }
    }

    pub fn negated(mut self) -> Self {
        self.negated = true;
        self
    }

    /// Variables mentioned by this atom, in order of first appearance.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !seen.contains(&v.as_str()) {
                    seen.push(v.as_str());
                }
            }
        }
        seen
    }
}

/// Comparison filters applied to bound variables after the joins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Filter {
    /// The two variables must bind to different values.
    Ne(String, String),
    /// The two variables must bind to equal values.
    Eq(String, String),
    /// Left variable strictly less than right variable.
    Lt(String, String),
}

/// A conjunctive query `name(head_vars) :- atoms, filters`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    pub name: String,
    pub head_vars: Vec<String>,
    pub atoms: Vec<QueryAtom>,
    pub filters: Vec<Filter>,
}

impl ConjunctiveQuery {
    pub fn new(name: impl Into<String>, head_vars: Vec<String>, atoms: Vec<QueryAtom>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head_vars,
            atoms,
            filters: Vec::new(),
        }
    }

    pub fn with_filters(mut self, filters: Vec<Filter>) -> Self {
        self.filters = filters;
        self
    }

    /// Relations referenced (positively or negatively) by this query.
    pub fn relations(&self) -> Vec<&str> {
        self.atoms.iter().map(|a| a.relation.as_str()).collect()
    }

    /// Output schema: one column per head variable.  Column types are inferred
    /// from the first atom that binds each variable; `Null` if unbound (which is
    /// reported as an error at evaluation time).
    pub fn output_schema(&self, db: &Database) -> Schema {
        let mut cols = Vec::new();
        for hv in &self.head_vars {
            let mut ty = DataType::Null;
            'outer: for atom in &self.atoms {
                if let Ok(tbl) = db.table(&atom.relation) {
                    for (i, term) in atom.terms.iter().enumerate() {
                        if let Term::Var(v) = term {
                            if v == hv {
                                if let Some(t) = tbl.schema().type_at(i) {
                                    ty = t;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
            cols.push(Column::new(hv.clone(), ty));
        }
        Schema::new(cols)
    }

    /// Evaluate the query against `db`, with `overrides` replacing named tables
    /// (used by delta evaluation to substitute "new" or "delta" versions).
    pub fn evaluate_with(
        &self,
        db: &Database,
        overrides: &HashMap<String, Table>,
    ) -> RelResult<Table> {
        let fetch = |name: &str| -> RelResult<&Table> {
            if let Some(t) = overrides.get(name) {
                Ok(t)
            } else {
                db.table(name)
            }
        };
        self.evaluate_fetch(db, &fetch)
    }

    /// Evaluate against `db` with no overrides.
    pub fn evaluate(&self, db: &Database) -> RelResult<Table> {
        self.evaluate_with(db, &HashMap::new())
    }

    fn evaluate_fetch<'a, F>(&self, db: &Database, fetch: &F) -> RelResult<Table>
    where
        F: Fn(&str) -> RelResult<&'a Table>,
    {
        // Bindings: variable assignment plus derivation count.
        let mut bindings: Vec<(HashMap<String, Value>, i64)> = vec![(HashMap::new(), 1)];

        for atom in &self.atoms {
            let table = fetch(&atom.relation)?;
            if table.schema().arity() != atom.terms.len() {
                return Err(RelError::InvalidQuery(format!(
                    "atom {}({}) has arity {} but relation has arity {}",
                    atom.relation,
                    atom.terms.len(),
                    atom.terms.len(),
                    table.schema().arity()
                )));
            }
            bindings = if atom.negated {
                Self::apply_negated_atom(atom, table, bindings)?
            } else {
                Self::apply_positive_atom(atom, table, bindings)
            };
            if bindings.is_empty() {
                break;
            }
        }

        // Filters.
        for f in &self.filters {
            bindings.retain(|(b, _)| Self::filter_holds(f, b));
        }

        // Project onto head variables.
        let schema = self.output_schema(db);
        let mut out = Table::new(self.name.clone(), schema);
        for (b, c) in bindings {
            let mut row = Vec::with_capacity(self.head_vars.len());
            for hv in &self.head_vars {
                match b.get(hv) {
                    Some(v) => row.push(v.clone()),
                    None => {
                        return Err(RelError::InvalidQuery(format!(
                            "head variable `{hv}` is not bound by the body of `{}`",
                            self.name
                        )))
                    }
                }
            }
            out.merge_unchecked(Tuple::new(row), c);
        }
        Ok(out)
    }

    fn filter_holds(f: &Filter, b: &HashMap<String, Value>) -> bool {
        let get = |n: &str| b.get(n);
        match f {
            Filter::Ne(a, c) => match (get(a), get(c)) {
                (Some(x), Some(y)) => x != y,
                _ => false,
            },
            Filter::Eq(a, c) => match (get(a), get(c)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            Filter::Lt(a, c) => match (get(a), get(c)) {
                (Some(x), Some(y)) => x < y,
                _ => false,
            },
        }
    }

    fn apply_positive_atom(
        atom: &QueryAtom,
        table: &Table,
        bindings: Vec<(HashMap<String, Value>, i64)>,
    ) -> Vec<(HashMap<String, Value>, i64)> {
        // Positions whose value is determined by the current bindings/constants.
        let mut out = Vec::new();
        if bindings.is_empty() {
            return out;
        }
        // Determine the "bound positions" w.r.t. the first binding — all bindings
        // share the same bound-variable set because atoms are processed in order.
        let sample = &bindings[0].0;
        let bound_positions: Vec<usize> = atom
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => sample.contains_key(v),
            })
            .map(|(i, _)| i)
            .collect();
        let index = table.index_on(&bound_positions);

        for (binding, count) in bindings {
            let key: Vec<Value> = bound_positions
                .iter()
                .map(|&i| match &atom.terms[i] {
                    Term::Const(v) => v.clone(),
                    Term::Var(v) => binding[v].clone(),
                })
                .collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for tuple in matches {
                let tuple_count = table.count(tuple);
                // Unify the unbound positions.
                let mut new_binding = binding.clone();
                let mut ok = true;
                for (i, term) in atom.terms.iter().enumerate() {
                    if bound_positions.contains(&i) {
                        continue;
                    }
                    match term {
                        Term::Const(v) => {
                            if tuple.get(i) != Some(v) {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(v) => {
                            let val = tuple.get(i).cloned().unwrap_or(Value::Null);
                            match new_binding.get(v) {
                                Some(existing) if existing != &val => {
                                    ok = false;
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    new_binding.insert(v.clone(), val);
                                }
                            }
                        }
                    }
                }
                if ok {
                    out.push((new_binding, count * tuple_count));
                }
            }
        }
        out
    }

    fn apply_negated_atom(
        atom: &QueryAtom,
        table: &Table,
        bindings: Vec<(HashMap<String, Value>, i64)>,
    ) -> RelResult<Vec<(HashMap<String, Value>, i64)>> {
        // All variables of a negated atom must already be bound (safe negation).
        if let Some((sample, _)) = bindings.first() {
            for v in atom.variables() {
                if !sample.contains_key(v) {
                    return Err(RelError::InvalidQuery(format!(
                        "negated atom `{}` uses unbound variable `{v}`",
                        atom.relation
                    )));
                }
            }
        }
        Ok(bindings
            .into_iter()
            .filter(|(b, _)| {
                let probe: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => v.clone(),
                        Term::Var(v) => b[v].clone(),
                    })
                    .collect();
                !table.contains(&Tuple::new(probe))
            })
            .collect())
    }

    /// Compute the *delta* of this query caused by `deltas`, with `db` in its
    /// **pre-update** state.
    ///
    /// The standard counting delta rule is used:
    /// `ΔQ = Σ_i  body[..i] (new) ⋈ Δatom_i ⋈ body[i+1..] (old)`,
    /// where insertions contribute positively and deletions negatively.  This
    /// handles self-joins correctly because each atom *position* is differentiated
    /// independently.
    ///
    /// Negated atoms over changed relations are not supported by the counting
    /// delta rule; an error is returned in that case (the caller should fall back
    /// to full recomputation).
    pub fn delta_evaluate(
        &self,
        db: &Database,
        deltas: &HashMap<String, DeltaRelation>,
    ) -> RelResult<DeltaRelation> {
        // Pre-materialize the "new" version of every changed relation.
        let mut new_tables: HashMap<String, Table> = HashMap::new();
        for (name, delta) in deltas {
            if let Ok(base) = db.table(name) {
                let mut t = base.clone();
                delta.apply_to(&mut t);
                new_tables.insert(name.clone(), t);
            }
        }

        let mut result = DeltaRelation::new(self.name.clone());

        for (i, atom) in self.atoms.iter().enumerate() {
            let Some(delta) = deltas.get(&atom.relation) else {
                continue;
            };
            if delta.is_empty() {
                continue;
            }
            if atom.negated {
                return Err(RelError::InvalidQuery(format!(
                    "cannot incrementally maintain negated atom over changed relation `{}`",
                    atom.relation
                )));
            }
            let base = db.table(&atom.relation)?;

            for (sign, part) in [
                (1i64, delta.positive_table(base, &atom.relation)),
                (-1i64, delta.negative_table(base, &atom.relation)),
            ] {
                if part.is_empty() {
                    continue;
                }
                // Rename every atom to a unique per-position alias and bind each
                // alias to the table version it should read: the delta part at
                // position i, the post-update state before i, the pre-update
                // state after i.
                let mut q = self.clone();
                let mut ov: HashMap<String, Table> = HashMap::new();
                for (j, other) in self.atoms.iter().enumerate() {
                    let alias = format!("__delta_pos_{j}__");
                    q.atoms[j].relation = alias.clone();
                    let tbl = if j == i {
                        part.clone()
                    } else if j < i {
                        match new_tables.get(&other.relation) {
                            Some(t) => t.clone(),
                            None => db.table(&other.relation)?.clone(),
                        }
                    } else {
                        db.table(&other.relation)?.clone()
                    };
                    ov.insert(alias, tbl);
                }
                let fetch = |name: &str| -> RelResult<&Table> {
                    if let Some(t) = ov.get(name) {
                        Ok(t)
                    } else {
                        db.table(name)
                    }
                };
                let partial = q.evaluate_fetch_with_schema(db, &fetch, self)?;
                for (t, c) in partial.iter_counted() {
                    result.change(t.clone(), sign * c);
                }
            }
        }
        Ok(result)
    }

    fn evaluate_fetch_with_schema<'a, F>(
        &self,
        db: &Database,
        fetch: &F,
        schema_source: &ConjunctiveQuery,
    ) -> RelResult<Table>
    where
        F: Fn(&str) -> RelResult<&'a Table>,
    {
        let mut bindings: Vec<(HashMap<String, Value>, i64)> = vec![(HashMap::new(), 1)];
        for atom in &self.atoms {
            let table = fetch(&atom.relation)?;
            bindings = if atom.negated {
                Self::apply_negated_atom(atom, table, bindings)?
            } else {
                Self::apply_positive_atom(atom, table, bindings)
            };
            if bindings.is_empty() {
                break;
            }
        }
        for f in &self.filters {
            bindings.retain(|(b, _)| Self::filter_holds(f, b));
        }
        let schema = schema_source.output_schema(db);
        let mut out = Table::new(self.name.clone(), schema);
        for (b, c) in bindings {
            let mut row = Vec::with_capacity(self.head_vars.len());
            for hv in &self.head_vars {
                match b.get(hv) {
                    Some(v) => row.push(v.clone()),
                    None => {
                        return Err(RelError::InvalidQuery(format!(
                            "head variable `{hv}` is not bound by the body of `{}`",
                            self.name
                        )))
                    }
                }
            }
            out.merge_unchecked(Tuple::new(row), c);
        }
        Ok(out)
    }
}

/// A materialized, incrementally maintainable view over a conjunctive query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedView {
    query: ConjunctiveQuery,
    result: Table,
    /// Number of incremental refreshes applied since the last full refresh.
    incremental_refreshes: usize,
}

impl MaterializedView {
    /// Materialize the view by full evaluation.
    pub fn materialize(query: ConjunctiveQuery, db: &Database) -> RelResult<Self> {
        let result = query.evaluate(db)?;
        Ok(MaterializedView {
            query,
            result,
            incremental_refreshes: 0,
        })
    }

    /// The stored result.
    pub fn result(&self) -> &Table {
        &self.result
    }

    /// The defining query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Number of incremental refreshes applied since materialization.
    pub fn incremental_refreshes(&self) -> usize {
        self.incremental_refreshes
    }

    /// Fully re-evaluate the view (the "Rerun" path).
    pub fn refresh_full(&mut self, db: &Database) -> RelResult<()> {
        self.result = self.query.evaluate(db)?;
        self.incremental_refreshes = 0;
        Ok(())
    }

    /// Incrementally maintain the view given base-relation deltas, with `db` in
    /// its **pre-update** state.  Returns the view delta that was applied, so the
    /// caller can propagate it further (e.g. into factor-graph deltas).
    pub fn refresh_incremental(
        &mut self,
        db: &Database,
        deltas: &HashMap<String, DeltaRelation>,
    ) -> RelResult<DeltaRelation> {
        let view_delta = self.query.delta_evaluate(db, deltas)?;
        view_delta.apply_to(&mut self.result);
        self.incremental_refreshes += 1;
        Ok(view_delta)
    }

    /// DRed-style maintenance returning the **distinct presence delta**, with
    /// `db` in its **pre-update** state.
    ///
    /// Gupta–Mumick–Subrahmanian DRed proceeds in two phases: *over-delete*
    /// every derivation a deleted tuple participated in, then *re-derive*
    /// tuples that still have an alternative derivation.  For the
    /// non-recursive conjunctive queries grounding uses, the counting delta
    /// rule computes both phases in one shot: a deletion subtracts exactly the
    /// derivations it supported, and the surviving count *is* the re-derived
    /// support.  What the grounder's candidate cascade needs on top of the
    /// counted maintenance is the set of tuples whose **presence** flipped:
    ///
    /// * `+1` — the tuple appeared (count crossed zero upward);
    /// * `-1` — the tuple's last derivation vanished (count crossed to ≤ 0).
    ///
    /// Tuples whose count changed without crossing zero (an alternative
    /// derivation survives — DRed's re-derived tuples) are *not* reported,
    /// which is what stops spurious downstream retraction.  Cross-**rule**
    /// re-derivation (another view deriving the same head tuple) is the
    /// caller's job: it has the sibling views, this view does not.
    pub fn refresh_dred(
        &mut self,
        db: &Database,
        deltas: &HashMap<String, DeltaRelation>,
    ) -> RelResult<DeltaRelation> {
        let view_delta = self.query.delta_evaluate(db, deltas)?;
        let mut distinct = DeltaRelation::new(self.query.name.clone());
        for (t, c) in view_delta.iter() {
            let before = self.result.count(t);
            let after = before + c;
            if before <= 0 && after > 0 {
                distinct.change(t.clone(), 1);
            } else if before > 0 && after <= 0 {
                distinct.change(t.clone(), -1);
            }
        }
        view_delta.apply_to(&mut self.result);
        self.incremental_refreshes += 1;
        Ok(distinct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::tuple;

    /// Build the running-example database: PersonCandidate(s, m), Sentence(s).
    fn example_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[("s", DataType::Int), ("m", DataType::Int)]),
        )
        .unwrap();
        db.create_table("Sentence", Schema::of(&[("s", DataType::Int)]))
            .unwrap();
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .unwrap();
        db.insert_all(
            "PersonCandidate",
            vec![
                tuple![1i64, 10i64],
                tuple![1i64, 11i64],
                tuple![2i64, 20i64],
            ],
        )
        .unwrap();
        db.insert_all("Sentence", vec![tuple![1i64], tuple![2i64]])
            .unwrap();
        db.insert_all(
            "EL",
            vec![
                tuple![10i64, "Barack_Obama_1"],
                tuple![11i64, "Michelle_Obama_1"],
            ],
        )
        .unwrap();
        db
    }

    /// R1: MarriedCandidate(m1, m2) :- PersonCandidate(s, m1), PersonCandidate(s, m2), m1 < m2.
    fn married_candidate_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "MarriedCandidate",
            vec!["m1".into(), "m2".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m1")]),
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m2")]),
            ],
        )
        .with_filters(vec![Filter::Lt("m1".into(), "m2".into())])
    }

    #[test]
    fn evaluate_self_join_with_filter() {
        let db = example_db();
        let q = married_candidate_query();
        let out = q.evaluate(&db).unwrap();
        // only sentence 1 has two person candidates
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![10i64, 11i64]));
    }

    #[test]
    fn evaluate_with_constants_and_negation() {
        let db = example_db();
        // persons in sentence 1 that are NOT linked to an entity
        let q = ConjunctiveQuery::new(
            "Unlinked",
            vec!["m".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::val(1i64), Term::var("m")]),
                QueryAtom::new("EL", vec![Term::var("m"), Term::var("e")]),
            ],
        );
        let linked = q.evaluate(&db).unwrap();
        assert_eq!(linked.len(), 2);

        let q_neg = ConjunctiveQuery::new(
            "NotInSentence1",
            vec!["m".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m")]),
                QueryAtom::new("PersonCandidate", vec![Term::val(1i64), Term::var("m")]).negated(),
            ],
        );
        let out = q_neg.evaluate(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![20i64]));
    }

    #[test]
    fn unbound_head_variable_is_an_error() {
        let db = example_db();
        let q = ConjunctiveQuery::new(
            "Bad",
            vec!["zzz".into()],
            vec![QueryAtom::new("Sentence", vec![Term::var("s")])],
        );
        assert!(matches!(q.evaluate(&db), Err(RelError::InvalidQuery(_))));
    }

    #[test]
    fn negation_with_unbound_variable_is_an_error() {
        let db = example_db();
        let q = ConjunctiveQuery::new(
            "Bad",
            vec!["s".into()],
            vec![
                QueryAtom::new("Sentence", vec![Term::var("s")]),
                QueryAtom::new("PersonCandidate", vec![Term::var("s2"), Term::var("m")]).negated(),
            ],
        );
        assert!(matches!(q.evaluate(&db), Err(RelError::InvalidQuery(_))));
    }

    #[test]
    fn counts_reflect_number_of_derivations() {
        let db = example_db();
        // project persons per sentence onto sentence id: sentence 1 has 2 derivations
        let q = ConjunctiveQuery::new(
            "SentencesWithPeople",
            vec!["s".into()],
            vec![QueryAtom::new(
                "PersonCandidate",
                vec![Term::var("s"), Term::var("m")],
            )],
        );
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.count(&tuple![1i64]), 2);
        assert_eq!(out.count(&tuple![2i64]), 1);
    }

    #[test]
    fn incremental_insert_matches_full_recompute() {
        let mut db = example_db();
        let q = married_candidate_query();
        let mut view = MaterializedView::materialize(q.clone(), &db).unwrap();

        // Insert a new person candidate into sentence 2, creating a new pair.
        let mut delta = DeltaRelation::new("PersonCandidate");
        delta.insert(tuple![2i64, 21i64]);
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), delta.clone());

        let view_delta = view.refresh_incremental(&db, &deltas).unwrap();
        assert!(!view_delta.is_empty());

        // Apply the base delta and compare with full recomputation.
        delta.apply_to(db.table_mut("PersonCandidate").unwrap());
        let full = q.evaluate(&db).unwrap();
        assert_eq!(view.result().sorted_tuples(), full.sorted_tuples());
        assert!(view.result().contains(&tuple![20i64, 21i64]));
    }

    #[test]
    fn incremental_delete_matches_full_recompute() {
        let mut db = example_db();
        let q = married_candidate_query();
        let mut view = MaterializedView::materialize(q.clone(), &db).unwrap();
        assert_eq!(view.result().len(), 1);

        let mut delta = DeltaRelation::new("PersonCandidate");
        delta.delete(tuple![1i64, 11i64]);
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), delta.clone());

        view.refresh_incremental(&db, &deltas).unwrap();
        delta.apply_to(db.table_mut("PersonCandidate").unwrap());
        let full = q.evaluate(&db).unwrap();
        assert_eq!(view.result().sorted_tuples(), full.sorted_tuples());
        assert!(view.result().is_empty());
    }

    #[test]
    fn incremental_update_of_two_relations() {
        // EL join: MarriedMentions_Ev(m1, m2) :- MarriedCandidate-like join over EL.
        let mut db = example_db();
        let q = ConjunctiveQuery::new(
            "Linked",
            vec!["m".into(), "e".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m")]),
                QueryAtom::new("EL", vec![Term::var("m"), Term::var("e")]),
            ],
        );
        let mut view = MaterializedView::materialize(q.clone(), &db).unwrap();

        let mut d_pc = DeltaRelation::new("PersonCandidate");
        d_pc.insert(tuple![2i64, 21i64]);
        let mut d_el = DeltaRelation::new("EL");
        d_el.insert(tuple![21i64, "New_Person_1"]);
        d_el.delete(tuple![11i64, "Michelle_Obama_1"]);

        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), d_pc.clone());
        deltas.insert("EL".to_string(), d_el.clone());

        view.refresh_incremental(&db, &deltas).unwrap();

        d_pc.apply_to(db.table_mut("PersonCandidate").unwrap());
        d_el.apply_to(db.table_mut("EL").unwrap());
        let full = q.evaluate(&db).unwrap();
        assert_eq!(view.result().sorted_tuples(), full.sorted_tuples());
        assert_eq!(view.incremental_refreshes(), 1);
    }

    #[test]
    fn delta_over_negated_atom_is_rejected() {
        let db = example_db();
        // Negation must be safe (all variables bound), so probe a specific entity.
        let q = ConjunctiveQuery::new(
            "NotLinked",
            vec!["m".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m")]),
                QueryAtom::new("EL", vec![Term::var("m"), Term::val("Barack_Obama_1")]).negated(),
            ],
        );
        let _ = q.evaluate(&db).unwrap();
        let mut deltas = HashMap::new();
        let mut d = DeltaRelation::new("EL");
        d.insert(tuple![20i64, "X"]);
        deltas.insert("EL".to_string(), d);
        assert!(q.delta_evaluate(&db, &deltas).is_err());
        drop(q);
    }

    #[test]
    fn dred_reports_only_presence_transitions() {
        // SentencesWithPeople(s) :- PersonCandidate(s, m): sentence 1 has two
        // derivations, so deleting one of them must NOT retract the tuple.
        let mut db = example_db();
        let q = ConjunctiveQuery::new(
            "SentencesWithPeople",
            vec!["s".into()],
            vec![QueryAtom::new(
                "PersonCandidate",
                vec![Term::var("s"), Term::var("m")],
            )],
        );
        let mut view = MaterializedView::materialize(q.clone(), &db).unwrap();
        assert_eq!(view.result().count(&tuple![1i64]), 2);

        // Delete one derivation of sentence 1: count 2 → 1, no transition.
        let mut delta = DeltaRelation::new("PersonCandidate");
        delta.delete(tuple![1i64, 10i64]);
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), delta.clone());
        let distinct = view.refresh_dred(&db, &deltas).unwrap();
        assert!(distinct.is_empty(), "re-derived tuple must not be reported");
        assert_eq!(view.result().count(&tuple![1i64]), 1);
        delta.apply_to(db.table_mut("PersonCandidate").unwrap());

        // Delete the last derivation: presence flips, -1 reported.
        let mut delta2 = DeltaRelation::new("PersonCandidate");
        delta2.delete(tuple![1i64, 11i64]);
        let mut deltas2 = HashMap::new();
        deltas2.insert("PersonCandidate".to_string(), delta2.clone());
        let distinct2 = view.refresh_dred(&db, &deltas2).unwrap();
        assert_eq!(distinct2.count(&tuple![1i64]), -1);
        assert!(!view.result().contains(&tuple![1i64]));
        delta2.apply_to(db.table_mut("PersonCandidate").unwrap());

        // Insert into a fresh sentence: presence appears, +1 reported.
        let mut delta3 = DeltaRelation::new("PersonCandidate");
        delta3.insert(tuple![9i64, 90i64]);
        let mut deltas3 = HashMap::new();
        deltas3.insert("PersonCandidate".to_string(), delta3);
        let distinct3 = view.refresh_dred(&db, &deltas3).unwrap();
        assert_eq!(distinct3.count(&tuple![9i64]), 1);

        // The maintained result always matches full recomputation.
        let full = q.evaluate(&db).unwrap();
        // (delta3 not yet applied to db; apply before comparing)
        let mut db2 = db.clone();
        db2.table_mut("PersonCandidate")
            .unwrap()
            .insert(tuple![9i64, 90i64])
            .unwrap();
        let full2 = q.evaluate(&db2).unwrap();
        assert_ne!(full.sorted_tuples(), full2.sorted_tuples());
        assert_eq!(view.result().sorted_tuples(), full2.sorted_tuples());
    }

    #[test]
    fn full_refresh_resets_counter() {
        let db = example_db();
        let q = married_candidate_query();
        let mut view = MaterializedView::materialize(q, &db).unwrap();
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), {
            let mut d = DeltaRelation::new("PersonCandidate");
            d.insert(tuple![3i64, 30i64]);
            d
        });
        view.refresh_incremental(&db, &deltas).unwrap();
        assert_eq!(view.incremental_refreshes(), 1);
        view.refresh_full(&db).unwrap();
        assert_eq!(view.incremental_refreshes(), 0);
    }
}

//! `dd-routerd` — the scatter-gather front door as a standalone process.
//!
//! Two modes:
//!
//! - **Daemon** (production shape): given the addresses of already-running
//!   shard servers, bind a front door and serve the dd-wire protocol until
//!   killed.  Clients connect to it exactly as they would to a single
//!   `dd-serverd`; batch envelopes additionally carry the cross-shard epoch
//!   vector.
//!
//!   ```text
//!   dd-routerd --shard 10.0.0.1:7100 --shard 10.0.0.2:7100 \
//!              --listen 0.0.0.0:7101 --hash-column 0 --pool 4
//!   ```
//!
//! - **Demo** (`--demo [--shards N]`): self-host a small cluster in-process,
//!   route reads through a front door, apply a single-shard update to show
//!   the epoch vector diverging, then kill a shard to show typed
//!   degradation.  Exits 0; used by CI as an end-to-end smoke test.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use dd_grounding::{standard_udfs, KbcUpdate};
use dd_relstore::{tuple, DataType, Database, Schema};
use dd_router::{Cluster, ClusterConfig, RouterConfig, RouterHandler};
use dd_server::{Client, Op, Server, ServerConfig};
use deepdive::{EngineConfig, ExecutionMode, ShardAssignment};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = if args.iter().any(|a| a == "--demo") {
        demo(&args)
    } else {
        daemon(&args)
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dd-routerd: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the values of a repeatable `--flag value` option.
fn values_of<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].as_str())
        .collect()
}

fn value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    values_of(args, flag).into_iter().next_back()
}

fn daemon(args: &[String]) -> Result<(), String> {
    let shards: Vec<SocketAddr> = values_of(args, "--shard")
        .into_iter()
        .map(|s| s.parse().map_err(|e| format!("bad --shard {s:?}: {e}")))
        .collect::<Result<_, _>>()?;
    if shards.is_empty() {
        return Err(
            "no shards given; usage: dd-routerd --shard ADDR [--shard ADDR ...] \
             [--listen ADDR] [--hash-column C | --range-bounds B1,B2,...] [--pool N] \
             (or: dd-routerd --demo [--shards N])"
                .to_string(),
        );
    }
    let listen = value_of(args, "--listen").unwrap_or("127.0.0.1:7101");
    let pool: usize = match value_of(args, "--pool") {
        Some(p) => p.parse().map_err(|e| format!("bad --pool {p:?}: {e}"))?,
        None => 4,
    };
    let assignment = match value_of(args, "--range-bounds") {
        Some(spec) => ShardAssignment::RangeKey {
            column: parse_column(args)?,
            bounds: spec
                .split(',')
                .map(|b| {
                    b.trim()
                        .parse()
                        .map_err(|e| format!("bad bound {b:?}: {e}"))
                })
                .collect::<Result<_, _>>()?,
        },
        None => ShardAssignment::HashKey {
            column: parse_column(args)?,
        },
    };

    let handler = RouterHandler::new(assignment, &shards, RouterConfig::default(), pool)
        .map_err(|e| e.to_string())?;
    let server = Server::bind_with_handler(listen, Arc::new(handler), ServerConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "dd-routerd: front door on {} over {} shard(s)",
        server.local_addr(),
        shards.len()
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn parse_column(args: &[String]) -> Result<usize, String> {
    match value_of(args, "--hash-column").or_else(|| value_of(args, "--range-column")) {
        Some(c) => c.parse().map_err(|e| format!("bad column {c:?}: {e}")),
        None => Ok(0),
    }
}

/// The demo program: claims become facts, every claim carries an exact
/// positive or negative label, so marginal probabilities are exactly 1.0 or
/// 0.0 and the output is deterministic.
const DEMO_PROGRAM: &str = "\
    relation Claim(doc: int, id: int) base.\n\
    relation Pos(doc: int, id: int) base.\n\
    relation Neg(doc: int, id: int) base.\n\
    relation Fact(doc: int, id: int) variable.\n\
    rule F feature: Fact(doc, id) :- Claim(doc, id) weight = 1.5.\n\
    rule SP supervision+: Fact(doc, id) :- Claim(doc, id), Pos(doc, id).\n\
    rule SN supervision-: Fact(doc, id) :- Claim(doc, id), Neg(doc, id).\n";

fn demo_database(docs: i64) -> Database {
    let mut db = Database::new();
    let schema = || Schema::of(&[("doc", DataType::Int), ("id", DataType::Int)]);
    for table in ["Claim", "Pos", "Neg"] {
        db.create_table(table, schema()).expect("fresh table");
    }
    for doc in 0..docs {
        for id in 0..6i64 {
            db.insert("Claim", tuple![doc, id]).expect("demo row");
            let label = if id % 2 == 0 { "Pos" } else { "Neg" };
            db.insert(label, tuple![doc, id]).expect("demo label");
        }
    }
    db
}

fn demo(args: &[String]) -> Result<(), String> {
    let num_shards: usize = match value_of(args, "--shards") {
        Some(n) => n.parse().map_err(|e| format!("bad --shards {n:?}: {e}"))?,
        None => 4,
    };
    println!("== dd-routerd demo: {num_shards} shards, hash-partitioned on doc ==");

    let mut config = ClusterConfig::new(num_shards);
    config.engine = EngineConfig::fast();
    let mut cluster = Cluster::build(DEMO_PROGRAM, &demo_database(8), &standard_udfs(), &config)
        .map_err(|e| e.to_string())?;
    cluster.initial_run().map_err(|e| e.to_string())?;
    println!("shard epochs after initial run: {:?}", cluster.epochs());

    let front = cluster
        .serve_front(
            "127.0.0.1:0",
            RouterConfig::default(),
            ServerConfig::default(),
            2,
        )
        .map_err(|e| e.to_string())?;
    println!("front door: {}", front.local_addr());

    let mut client = Client::connect(front.local_addr()).map_err(|e| e.to_string())?;
    let batch = client
        .batch(vec![
            Op::Relations,
            Op::Stats,
            Op::AllFacts {
                min_probability: 0.5,
                offset: 0,
                limit: 1_000,
            },
        ])
        .map_err(|e| e.to_string())?;
    println!("epoch vector: {:?}", batch.epochs);
    println!("relations:    {:?}", batch.results[0]);
    println!("stats:        {:?}", batch.results[1]);

    // A single-document update touches exactly one shard: its epoch advances,
    // the rest stand still, and the next batch's epoch vector shows it.
    let mut update = KbcUpdate::new();
    update.insert("Claim", tuple![100i64, 0i64]);
    update.insert("Pos", tuple![100i64, 0i64]);
    cluster
        .run_update(&update, ExecutionMode::Incremental)
        .map_err(|e| e.to_string())?;
    let after = client
        .batch(vec![Op::probability_of("Fact", tuple![100i64, 0i64])])
        .map_err(|e| e.to_string())?;
    println!("after one-doc update:");
    println!(
        "epoch vector: {:?} (exactly one shard advanced)",
        after.epochs
    );
    println!("new fact:     {:?}", after.results[0]);

    // Kill a shard: broadcast reads now degrade into a typed error.
    cluster.kill_shard(0);
    match client.batch(vec![Op::Relations]) {
        Err(dd_server::ClientError::Server { kind, message }) => {
            println!("with shard 0 down: typed refusal {kind}: {message}");
        }
        Ok(_) => return Err("a dead shard must fail broadcast reads".to_string()),
        Err(other) => return Err(format!("expected a typed refusal, got {other}")),
    }

    front.shutdown();
    println!("demo complete");
    Ok(())
}

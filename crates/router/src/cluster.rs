//! An in-process sharded deployment: N independent [`DeepDive`] engines,
//! each serving its partition of the KB over its own [`dd_server::Server`].
//!
//! [`Cluster`] is the operational side of sharding.  It partitions the base
//! database under a [`ShardAssignment`], builds one engine per shard (every
//! shard runs the *full* program — partition-key joins make groundings
//! shard-local, so the union of shard answers equals the unsharded answer),
//! and binds one loopback server per shard.  Updates are split with
//! [`ShardAssignment::partition_update`] and applied only to the shards they
//! touch, so shard epochs advance independently — exactly the situation the
//! router's cross-shard epoch vector exists to make readable.
//!
//! Durability composes per shard: a template [`DurabilityConfig`] is
//! specialised to `data_dir/shard-<i>`, giving each engine its own WAL and
//! checkpoint stream with the same fsync/retention/auto-checkpoint policy.
//!
//! The cluster is deliberately process-local (engines behind `Mutex`es,
//! servers on loopback): it is the harness for differential testing and the
//! reference topology for a real multi-process deployment, which would run
//! the same binary once per shard.

use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use dd_grounding::{KbcUpdate, UdfRegistry};
use dd_relstore::{Database, Tuple};
use dd_server::{Server, ServerConfig};
use deepdive::{
    DeepDive, DurabilityConfig, EngineConfig, EngineError, ExecutionMode, IterationReport,
    ShardAssignment, ShardingError,
};

use crate::front::RouterHandler;
use crate::router::{Router, RouterConfig};

/// How to build a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards (engines/servers) to run.
    pub num_shards: usize,
    /// How tuples map to shards.  Rules must join on the partition key for
    /// the sharding to be sound; see [`ShardAssignment`].
    pub assignment: ShardAssignment,
    /// Engine configuration, cloned into every shard.
    pub engine: EngineConfig,
    /// Per-shard server configuration, cloned into every shard.
    pub server: ServerConfig,
    /// Durability template: when set, shard `i` persists under
    /// `data_dir/shard-<i>` with this policy.
    pub durability: Option<DurabilityConfig>,
}

impl ClusterConfig {
    /// `num_shards` hash-partitioned on column 0, in-memory, default server
    /// settings.
    pub fn new(num_shards: usize) -> Self {
        ClusterConfig {
            num_shards,
            assignment: ShardAssignment::HashKey { column: 0 },
            engine: EngineConfig::default(),
            server: ServerConfig::default(),
            durability: None,
        }
    }
}

/// Why a cluster operation failed.
#[derive(Debug)]
pub enum ClusterError {
    /// A shard's engine rejected the operation.
    Engine { shard: usize, source: EngineError },
    /// The database or an update could not be partitioned.
    Sharding(ShardingError),
    /// Binding a shard server failed.
    Io(io::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Engine { shard, source } => {
                write!(f, "shard {shard} engine error: {source}")
            }
            ClusterError::Sharding(err) => write!(f, "sharding error: {err}"),
            ClusterError::Io(err) => write!(f, "server bind error: {err}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ShardingError> for ClusterError {
    fn from(err: ShardingError) -> Self {
        ClusterError::Sharding(err)
    }
}

impl From<io::Error> for ClusterError {
    fn from(err: io::Error) -> Self {
        ClusterError::Io(err)
    }
}

struct Shard {
    engine: Mutex<DeepDive>,
    /// `None` after [`Cluster::kill_shard`]: the engine stays alive (its
    /// data is not lost) but the wire endpoint is gone.
    server: Option<Server>,
    addr: SocketAddr,
}

/// A process-local sharded deployment of N engines + N loopback servers.
pub struct Cluster {
    assignment: ShardAssignment,
    shards: Vec<Shard>,
}

impl Cluster {
    /// Partition `database` and bring up one engine + server per shard.
    ///
    /// Every shard compiles the full `program` over its slice of the data.
    /// Engines come up at epoch 0; call [`Cluster::initial_run`] (or replay
    /// durable state) to publish the first snapshot.
    pub fn build(
        program: &str,
        database: &Database,
        udfs: &UdfRegistry,
        config: &ClusterConfig,
    ) -> Result<Cluster, ClusterError> {
        config.assignment.validate(config.num_shards)?;
        let parts = config
            .assignment
            .partition_database(database, config.num_shards)?;
        let mut shards = Vec::with_capacity(config.num_shards);
        for (index, part) in parts.into_iter().enumerate() {
            let mut builder = DeepDive::builder()
                .program_text(program)
                .database(part)
                .udfs(udfs.clone())
                .config(config.engine.clone());
            if let Some(template) = &config.durability {
                let mut durability = template.clone();
                durability.data_dir = template.data_dir.join(format!("shard-{index}"));
                builder = builder.durability(durability);
            }
            let engine = builder.build().map_err(|source| ClusterError::Engine {
                shard: index,
                source,
            })?;
            let server = Server::bind("127.0.0.1:0", engine.reader(), config.server.clone())?;
            let addr = server.local_addr();
            shards.push(Shard {
                engine: Mutex::new(engine),
                server: Some(server),
                addr,
            });
        }
        Ok(Cluster {
            assignment: config.assignment.clone(),
            shards,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The assignment tuples are routed under.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// Shard server addresses, index-aligned with shard numbering (killed
    /// shards keep their — now dead — address).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.addr).collect()
    }

    /// Current per-shard epochs (the cluster-side view of the epoch vector).
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| self.lock(s).epoch()).collect()
    }

    /// Ground, learn, and publish epoch 1 on every shard.
    pub fn initial_run(&self) -> Result<Vec<IterationReport>, ClusterError> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                self.lock(s)
                    .initial_run()
                    .map_err(|source| ClusterError::Engine { shard, source })
            })
            .collect()
    }

    /// Split `update` along the partition key and run each non-empty slice
    /// on its owning shard.  Shards the update does not touch keep their
    /// epoch — the returned vector has `None` in those slots.
    ///
    /// New rules are broadcast to every shard (each shard grounds them over
    /// its own slice), so a rule-bearing update advances all epochs.
    pub fn run_update(
        &self,
        update: &KbcUpdate,
        mode: ExecutionMode,
    ) -> Result<Vec<Option<IterationReport>>, ClusterError> {
        let parts = self
            .assignment
            .partition_update(update, self.shards.len())?;
        parts
            .into_iter()
            .zip(&self.shards)
            .enumerate()
            .map(|(shard, (part, s))| {
                if part.is_empty() {
                    return Ok(None);
                }
                self.lock(s)
                    .run_update(&part, mode)
                    .map(Some)
                    .map_err(|source| ClusterError::Engine { shard, source })
            })
            .collect()
    }

    /// Retract one supervision label on the shard that owns `tuple`.
    pub fn retract_supervision(
        &self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<IterationReport, ClusterError> {
        let shard = self.assignment.shard_of(&tuple, self.shards.len())?;
        self.lock(&self.shards[shard])
            .retract_supervision(relation, tuple)
            .map_err(|source| ClusterError::Engine { shard, source })
    }

    /// Direct access to one shard's engine (tests and operational tooling).
    pub fn engine(&self, shard: usize) -> MutexGuard<'_, DeepDive> {
        self.lock(&self.shards[shard])
    }

    /// Tear down one shard's server, keeping its engine (and durable state)
    /// intact.  Routed batches that need this shard now degrade into typed
    /// `shard_unavailable` errors until a new deployment rebinds it.
    pub fn kill_shard(&mut self, shard: usize) {
        if let Some(server) = self.shards[shard].server.take() {
            server.shutdown();
        }
    }

    /// Whether the shard's server is still up.
    pub fn is_alive(&self, shard: usize) -> bool {
        self.shards[shard].server.is_some()
    }

    /// One shard server's live counters (`None` once the shard is killed).
    /// The loadgen harness sums these across shards to report shard-side
    /// overload rejections and queue-wait/service-time totals that the
    /// front door's own stats cannot see.
    pub fn server_stats(&self, shard: usize) -> Option<dd_server::ServerStats> {
        self.shards[shard].server.as_ref().map(Server::stats)
    }

    /// A fresh scatter-gather client over this cluster's shards.
    pub fn router(&self, config: RouterConfig) -> Result<Router, ShardingError> {
        Router::new(self.assignment.clone(), &self.addrs(), config)
    }

    /// Bind the scatter-gather front door: a wire server whose batches are
    /// answered by a pool of routers over this cluster's shards.  Clients
    /// speak the ordinary dd-wire protocol to it and receive cross-shard
    /// epoch vectors in their batch envelopes.
    pub fn serve_front(
        &self,
        addr: &str,
        router: RouterConfig,
        server: ServerConfig,
        pool: usize,
    ) -> Result<Server, ClusterError> {
        let handler = RouterHandler::new(self.assignment.clone(), &self.addrs(), router, pool)?;
        Ok(Server::bind_with_handler(addr, Arc::new(handler), server)?)
    }

    fn lock<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, DeepDive> {
        shard.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            if let Some(server) = shard.server.take() {
                server.shutdown();
            }
        }
    }
}

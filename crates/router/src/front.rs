//! The front door: serving routed batches over the ordinary wire protocol.
//!
//! [`RouterHandler`] implements [`dd_server::BatchHandler`], so an unmodified
//! [`dd_server::Server`] — same framing, same backpressure, same typed error
//! taxonomy — can answer from a shard cluster instead of a local snapshot.
//! Clients need no changes: they connect to the front door exactly as they
//! would to a single engine and receive batch envelopes that additionally
//! carry the cross-shard epoch vector.
//!
//! A [`Router`] holds per-shard connections and is therefore stateful; the
//! handler keeps a small pool of routers behind mutexes and picks one per
//! batch round-robin, preferring an uncontended router (`try_lock`) and
//! falling back to blocking on its designated slot so a burst of batches
//! cannot starve.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use dd_server::{BatchHandler, Request, Response};
use deepdive::{ShardAssignment, ShardingError};

use crate::router::{Router, RouterConfig};

/// A [`BatchHandler`] that answers wire batches by scatter-gathering over a
/// shard cluster.
pub struct RouterHandler {
    routers: Vec<Mutex<Router>>,
    next: AtomicUsize,
}

impl RouterHandler {
    /// Build a handler with `pool` independent routers (clamped to at least
    /// one) over the given shard addresses.  Each pooled router maintains
    /// its own shard connections, so the front door serves up to `pool`
    /// batches concurrently — size it to the front server's worker count.
    pub fn new(
        assignment: ShardAssignment,
        addrs: &[std::net::SocketAddr],
        config: RouterConfig,
        pool: usize,
    ) -> Result<RouterHandler, ShardingError> {
        let routers = (0..pool.max(1))
            .map(|_| Router::new(assignment.clone(), addrs, config.clone()).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RouterHandler {
            routers,
            next: AtomicUsize::new(0),
        })
    }

    /// Number of pooled routers.
    pub fn pool_size(&self) -> usize {
        self.routers.len()
    }
}

impl BatchHandler for RouterHandler {
    fn execute(&self, request: &Request) -> Response {
        let n = self.routers.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        // First pass: take any idle router without blocking.
        for i in 0..n {
            if let Ok(mut router) = self.routers[(start + i) % n].try_lock() {
                return router.execute(request);
            }
        }
        // All busy: queue on this batch's designated slot.
        self.routers[start % n]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .execute(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_server::Op;

    #[test]
    fn the_pool_is_never_empty_and_serves_requests() {
        let addrs = ["127.0.0.1:1".parse().unwrap()];
        let handler = RouterHandler::new(
            ShardAssignment::HashKey { column: 0 },
            &addrs,
            RouterConfig::default(),
            0,
        )
        .unwrap();
        assert_eq!(handler.pool_size(), 1);

        // Nothing listens on port 1: the handler must answer with a typed
        // error, not hang or panic.
        let response = handler.execute(&Request::new(vec![Op::Epoch]));
        let Response::Error { kind, .. } = response else {
            panic!("a dead shard must surface as a typed error");
        };
        assert_eq!(kind, dd_server::ErrorKind::ShardUnavailable);
    }

    #[test]
    fn bad_assignments_are_rejected_at_construction() {
        let addrs = ["127.0.0.1:1".parse().unwrap()];
        let result = RouterHandler::new(
            ShardAssignment::RangeKey {
                column: 0,
                bounds: vec![10, 20],
            },
            &addrs,
            RouterConfig::default(),
            2,
        );
        assert!(result.is_err());
    }
}

//! # dd-router — multi-engine KB sharding behind one scatter-gather front door
//!
//! A single [`deepdive::DeepDive`] engine holds the whole knowledge base in
//! one process.  This crate scales that out: the KB is partitioned across N
//! independent engines under a [`deepdive::ShardAssignment`], each shard runs
//! its own worker pool, WAL/checkpoint directory, and snapshot stream, and a
//! router presents the cluster as one logical KB over the existing dd-wire
//! protocol.
//!
//! The crate has three layers:
//!
//! - [`cluster`] — the deployment: partition a database, build one engine +
//!   one [`dd_server::Server`] per shard, apply updates to owning shards.
//! - [`router`] — the scatter-gather core: fan a wire batch out to the
//!   shards it needs, pin a **cross-shard epoch vector**, merge partial
//!   results into exactly the answer an unsharded engine would give, and
//!   degrade into typed `shard_unavailable` / `epoch_unavailable` errors —
//!   never a hang — when shards are down or racing.
//! - [`front`] — the front door: a [`dd_server::BatchHandler`] pool serving
//!   routed batches through an unmodified wire server, so clients cannot
//!   tell a cluster from a single engine (except for the extra `epochs`
//!   vector in the batch envelope).
//!
//! ## Soundness contract
//!
//! Sharding is *transparent* — byte-identical answers to the unsharded
//! engine — when every rule joins relations on the full partition key.  Then
//! every grounding is shard-local, the per-shard factor graphs are disjoint
//! sub-graphs of the global one, and reads merge by order restoration alone
//! (shards own disjoint tuple sets).  `tests/router.rs` enforces this as a
//! differential oracle against a single-engine reference.
//!
//! ```no_run
//! use dd_router::{Cluster, ClusterConfig, RouterConfig};
//! use dd_grounding::standard_udfs;
//! use dd_relstore::{tuple, Database, DataType, Schema};
//!
//! let program = "relation Claim(doc: int, id: int) base.\n\
//!                relation Fact(doc: int, id: int) variable.\n\
//!                rule F feature: Fact(doc, id) :- Claim(doc, id) weight = 1.5.";
//! let mut db = Database::new();
//! let schema = Schema::of(&[("doc", DataType::Int), ("id", DataType::Int)]);
//! db.create_table("Claim", schema).unwrap();
//! db.insert("Claim", tuple![1i64, 10i64]).unwrap();
//!
//! let cluster = Cluster::build(program, &db, &standard_udfs(), &ClusterConfig::new(4))?;
//! cluster.initial_run()?;
//!
//! let mut router = cluster.router(RouterConfig::default())?;
//! let page = router.batch(&[dd_server::Op::AllFacts {
//!     min_probability: 0.5,
//!     offset: 0,
//!     limit: 100,
//! }])?;
//! println!("epoch vector: {:?}", page.epochs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cluster;
pub mod front;
pub mod router;

pub use cluster::{Cluster, ClusterConfig, ClusterError};
pub use front::RouterHandler;
pub use router::{Router, RouterBatch, RouterConfig, RouterError};

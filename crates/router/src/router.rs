//! The scatter-gather router: one logical KB view over N shard servers.
//!
//! A [`Router`] owns one [`dd_server::Client`] per shard and turns a batch of
//! wire [`Op`]s into per-shard sub-batches:
//!
//! - **Broadcast ops** (`Epoch`, `Relations`, `Stats`, `Query`, `AllFacts`)
//!   fan out to every shard and the partial results are merged back into the
//!   exact answer the unsharded engine would give (see *Merge semantics*).
//! - **Keyed ops** (`ProbabilityOf`) route to the single shard that owns the
//!   tuple under the cluster's [`ShardAssignment`].
//! - `Sleep` is fault-injection for a single server and is rejected with
//!   `bad_request` — it has no meaning across shards.
//!
//! # Epoch vector
//!
//! Shards publish epochs independently, so there is no single "cluster
//! epoch".  Instead every batch pins a **cross-shard epoch vector**: the
//! first sub-request to a shard records the epoch that shard answered from,
//! and every later sub-request (large batches are chunked at
//! [`MAX_OPS_PER_BATCH`]) is pinned to that epoch with `at_epoch`.  If a
//! shard publishes a new epoch mid-batch, the pin fails with
//! `epoch_unavailable` and the router restarts that shard's sub-batch once
//! from scratch; a second miss surfaces as a typed
//! [`RouterError::EpochUnavailable`].  Every result a batch returns is
//! therefore a consistent read of each consulted shard, and the vector of
//! consulted epochs is reported back (`None` entries are shards the batch
//! never touched).
//!
//! # Merge semantics
//!
//! Partition keys make shards disjoint, so merging is order restoration, not
//! deduplication.  Each merge mirrors the corresponding single-engine read
//! byte for byte:
//!
//! - unranked `Query`: shards are asked for the first `offset + limit` facts
//!   (tuple-ascending); the merged stream is re-sorted by tuple, then the
//!   global `offset`/`limit` window is applied.
//! - `top_k` `Query`: shards return their full local top-k; the union is
//!   re-ranked (probability descending, ties by tuple ascending — the same
//!   comparator as `FactQuery::run`), truncated to `k`, then paginated.
//!   The global top-k is always contained in the union of local top-k sets.
//! - `AllFacts`: per-shard windows of `offset + limit`, merged in
//!   `(relation, tuple)` order, then the global window is applied.
//! - `Relations`: sorted union.  `Stats`: field-wise sum.
//!
//! # Failure
//!
//! A shard that cannot be reached — dial failure, socket death, or a retry
//! budget exhausted against `overloaded`/`shutting_down` refusals — fails the
//! whole batch with a typed [`RouterError::ShardUnavailable`] naming the
//! shard.  The router never hangs and never silently drops a shard's slice
//! of the answer: a degraded cluster answers with a typed error, not with a
//! hole in the data.

use std::collections::{BTreeSet, VecDeque};
use std::net::SocketAddr;
use std::time::Duration;

use dd_server::{
    Batch, Client, ClientConfig, ClientError, ErrorKind, FactQuerySpec, Op, OpResult, Request,
    Response, RetryPolicy, MAX_OPS_PER_BATCH,
};
use deepdive::{ShardAssignment, ShardingError};

/// The wire integer cap: `usize` fields are encoded as JSON numbers and
/// bounded at `u32::MAX` on decode, so rewritten windows clamp there.
const WIRE_USIZE_MAX: usize = u32::MAX as usize;

/// Connection and retry policy of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backoff schedule for `overloaded`/`shutting_down` refusals, applied
    /// per shard call.
    pub retry: RetryPolicy,
    /// Socket behaviour of each per-shard client.  The defaults bound every
    /// dial and every read, so a dead shard becomes a typed error instead of
    /// a hang.
    pub client: ClientConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            retry: RetryPolicy::default(),
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(2)),
                read_timeout: Some(Duration::from_secs(30)),
            },
        }
    }
}

/// Why a routed batch failed.  Every variant is a *typed* outcome: the
/// router's contract is that a sick cluster degrades into one of these, never
/// into a hang or a partial answer.
#[derive(Debug)]
pub enum RouterError {
    /// A shard the batch needs is down or unreachable after the retry budget.
    ShardUnavailable {
        shard: usize,
        addr: SocketAddr,
        message: String,
    },
    /// A shard advanced its epoch twice while this batch was in flight, so a
    /// consistent pinned read was impossible even after a restart.
    EpochUnavailable {
        shard: usize,
        addr: SocketAddr,
        message: String,
    },
    /// The batch itself is not routable (e.g. contains `Sleep`).
    BadRequest(String),
    /// A keyed op's tuple cannot be mapped to a shard.
    Sharding(ShardingError),
    /// A shard answered with something the router cannot reconcile — a
    /// result-count or result-type mismatch.  Indicates a version skew or a
    /// bug, not load.
    Protocol { shard: usize, message: String },
}

impl RouterError {
    /// The wire taxonomy kind this error maps to when the router is serving
    /// as a front door.
    pub fn kind(&self) -> ErrorKind {
        match self {
            RouterError::ShardUnavailable { .. } => ErrorKind::ShardUnavailable,
            RouterError::EpochUnavailable { .. } => ErrorKind::EpochUnavailable,
            RouterError::BadRequest(_) | RouterError::Sharding(_) => ErrorKind::BadRequest,
            RouterError::Protocol { .. } => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::ShardUnavailable {
                shard,
                addr,
                message,
            } => write!(f, "shard {shard} ({addr}) is unavailable: {message}"),
            RouterError::EpochUnavailable {
                shard,
                addr,
                message,
            } => write!(f, "shard {shard} ({addr}) kept moving its epoch: {message}"),
            RouterError::BadRequest(message) => write!(f, "unroutable request: {message}"),
            RouterError::Sharding(err) => write!(f, "cannot route tuple: {err}"),
            RouterError::Protocol { shard, message } => {
                write!(f, "shard {shard} answered inconsistently: {message}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl From<ShardingError> for RouterError {
    fn from(err: ShardingError) -> Self {
        RouterError::Sharding(err)
    }
}

/// A merged batch answer: one result per submitted op, plus the epoch vector
/// the answer was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterBatch {
    /// Per-shard epochs; `None` entries are shards this batch never
    /// consulted.
    pub epochs: Vec<Option<u64>>,
    /// One result per op, in submission order.
    pub results: Vec<OpResult>,
}

/// Where one op goes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Target {
    /// Fan out to every shard and merge.
    All,
    /// Route to the single owning shard.
    One(usize),
}

/// One shard's connection slot.  Clients dial lazily and are dropped on
/// transport errors, so a shard that restarts is re-dialed transparently on
/// the next batch.
struct ShardSlot {
    addr: SocketAddr,
    client: Option<Client>,
}

/// How one shard's sub-batch failed, before the shard index/address are
/// attached.
struct ShardFailure {
    epoch_moved: bool,
    protocol: bool,
    message: String,
}

/// A multi-shard scatter-gather client presenting one logical KB.
pub struct Router {
    assignment: ShardAssignment,
    config: RouterConfig,
    shards: Vec<ShardSlot>,
}

impl Router {
    /// Build a router over `addrs` (one per shard, index-aligned with the
    /// cluster's shard numbering).  Connections are dialed lazily on first
    /// use.
    pub fn new(
        assignment: ShardAssignment,
        addrs: &[SocketAddr],
        config: RouterConfig,
    ) -> Result<Router, ShardingError> {
        assignment.validate(addrs.len())?;
        Ok(Router {
            assignment,
            config,
            shards: addrs
                .iter()
                .map(|&addr| ShardSlot { addr, client: None })
                .collect(),
        })
    }

    /// Number of shards behind this router.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The assignment used to route keyed ops.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// The shard addresses, index-aligned with the epoch vector.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.addr).collect()
    }

    /// Execute a batch of ops against the cluster and merge the answer.
    ///
    /// Unlike a single server's wire limit, a library batch may exceed
    /// [`MAX_OPS_PER_BATCH`]: per-shard sub-batches are chunked and the
    /// chunks after the first are pinned to the first chunk's epoch, so the
    /// whole batch still reads one epoch per shard.
    pub fn batch(&mut self, ops: &[Op]) -> Result<RouterBatch, RouterError> {
        let num_shards = self.shards.len();
        let mut targets = Vec::with_capacity(ops.len());
        for op in ops {
            targets.push(self.target_of(op)?);
        }

        // Build each shard's sub-batch (ops rewritten for local execution,
        // in submission order, so merging pops front-to-back).
        let mut plans: Vec<Vec<Op>> = (0..num_shards).map(|_| Vec::new()).collect();
        for (op, target) in ops.iter().zip(&targets) {
            match target {
                Target::One(shard) => plans[*shard].push(op.clone()),
                Target::All => {
                    let rewritten = rewrite_for_shard(op);
                    for plan in &mut plans {
                        plan.push(rewritten.clone());
                    }
                }
            }
        }

        // Scatter: one thread per consulted shard; each runs its sub-batch
        // pinned to the first answer's epoch.
        let config = &self.config;
        let outcomes: Vec<Option<Result<(u64, VecDeque<OpResult>), ShardFailure>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&plans)
                    .map(|(slot, plan)| {
                        if plan.is_empty() {
                            None
                        } else {
                            Some(scope.spawn(move || run_shard(slot, plan, config)))
                        }
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.map(|h| h.join().expect("shard workers do not panic")))
                    .collect()
            });

        // Gather: surface the first shard failure as a typed error, else
        // collect per-shard result queues and the epoch vector.
        let mut epochs: Vec<Option<u64>> = vec![None; num_shards];
        let mut queues: Vec<VecDeque<OpResult>> =
            (0..num_shards).map(|_| VecDeque::new()).collect();
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                None => {}
                Some(Ok((epoch, results))) => {
                    epochs[shard] = Some(epoch);
                    queues[shard] = results;
                }
                Some(Err(failure)) => {
                    let addr = self.shards[shard].addr;
                    return Err(if failure.epoch_moved {
                        RouterError::EpochUnavailable {
                            shard,
                            addr,
                            message: failure.message,
                        }
                    } else if failure.protocol {
                        RouterError::Protocol {
                            shard,
                            message: failure.message,
                        }
                    } else {
                        RouterError::ShardUnavailable {
                            shard,
                            addr,
                            message: failure.message,
                        }
                    });
                }
            }
        }

        // Merge, popping each consulted shard's queue in submission order.
        let mut results = Vec::with_capacity(ops.len());
        for (op, target) in ops.iter().zip(&targets) {
            let merged = match target {
                Target::One(shard) => {
                    queues[*shard]
                        .pop_front()
                        .ok_or_else(|| RouterError::Protocol {
                            shard: *shard,
                            message: "returned fewer results than ops sent".to_string(),
                        })?
                }
                Target::All => {
                    let mut parts = Vec::with_capacity(num_shards);
                    for (shard, queue) in queues.iter_mut().enumerate() {
                        parts.push((
                            shard,
                            queue.pop_front().ok_or_else(|| RouterError::Protocol {
                                shard,
                                message: "returned fewer results than ops sent".to_string(),
                            })?,
                        ));
                    }
                    merge_broadcast(op, parts)?
                }
            };
            results.push(merged);
        }

        Ok(RouterBatch { epochs, results })
    }

    /// Serve one wire [`Request`] — the front-door entry point.
    ///
    /// The response's `epochs` field carries the cross-shard epoch vector;
    /// its scalar `epoch` is only informational (the highest consulted shard
    /// epoch), since no single number can name a cross-shard read.  Requests
    /// that pin `at_epoch` are rejected: a scalar pin is not addressable
    /// against a vector of independent shard epochs.
    pub fn execute(&mut self, request: &Request) -> Response {
        if request.at_epoch.is_some() {
            return Response::error(
                ErrorKind::BadRequest,
                "the router answers with a cross-shard epoch vector; \
                 a scalar at_epoch pin is not addressable here",
            );
        }
        match self.batch(&request.ops) {
            Ok(batch) => {
                let epoch = batch.epochs.iter().filter_map(|e| *e).max().unwrap_or(0);
                Response::Batch(Batch {
                    epoch,
                    results: batch.results,
                    epochs: Some(batch.epochs),
                })
            }
            Err(err) => Response::error(err.kind(), err.to_string()),
        }
    }

    fn target_of(&self, op: &Op) -> Result<Target, RouterError> {
        match op {
            Op::Epoch | Op::Relations | Op::Stats | Op::Query { .. } | Op::AllFacts { .. } => {
                Ok(Target::All)
            }
            Op::ProbabilityOf { tuple, .. } => Ok(Target::One(
                self.assignment.shard_of(tuple, self.shards.len())?,
            )),
            Op::Sleep { .. } => Err(RouterError::BadRequest(
                "sleep is single-server fault injection and is not routable".to_string(),
            )),
        }
    }
}

/// Rewrite a broadcast op into the per-shard variant whose union contains
/// the global answer (pagination widened to `offset + limit`, ranking kept
/// at full local `top_k`).
fn rewrite_for_shard(op: &Op) -> Op {
    match op {
        Op::Query { relation, spec } => {
            let local = if spec.top_k.is_some() {
                FactQuerySpec {
                    min_probability: spec.min_probability,
                    top_k: spec.top_k.map(|k| k.min(WIRE_USIZE_MAX)),
                    offset: 0,
                    limit: None,
                }
            } else {
                FactQuerySpec {
                    min_probability: spec.min_probability,
                    top_k: None,
                    offset: 0,
                    limit: spec
                        .limit
                        .map(|l| l.saturating_add(spec.offset).min(WIRE_USIZE_MAX)),
                }
            };
            Op::Query {
                relation: relation.clone(),
                spec: local,
            }
        }
        Op::AllFacts {
            min_probability,
            offset,
            limit,
        } => Op::AllFacts {
            min_probability: *min_probability,
            offset: 0,
            limit: limit.saturating_add(*offset).min(WIRE_USIZE_MAX),
        },
        other => other.clone(),
    }
}

/// Run one shard's sub-batch: chunked at the wire cap, pinned to the first
/// chunk's epoch, restarted once in full if the shard publishes mid-batch.
fn run_shard(
    slot: &mut ShardSlot,
    ops: &[Op],
    config: &RouterConfig,
) -> Result<(u64, VecDeque<OpResult>), ShardFailure> {
    debug_assert!(!ops.is_empty(), "empty plans are never scheduled");
    for attempt in 0..2 {
        let mut pinned: Option<u64> = None;
        let mut results = VecDeque::with_capacity(ops.len());
        let mut epoch_moved = false;
        for chunk in ops.chunks(MAX_OPS_PER_BATCH) {
            match call_shard(slot, chunk, pinned, config) {
                Ok(batch) => {
                    pinned.get_or_insert(batch.epoch);
                    results.extend(batch.results);
                }
                Err(ClientError::Server {
                    kind: ErrorKind::EpochUnavailable,
                    ..
                }) if attempt == 0 => {
                    // The shard published a new epoch between our chunks;
                    // restart the whole sub-batch against the new epoch.
                    epoch_moved = true;
                    break;
                }
                Err(err) => return Err(classify(err)),
            }
        }
        if !epoch_moved {
            let epoch = pinned.expect("at least one chunk answered");
            return Ok((epoch, results));
        }
    }
    Err(ShardFailure {
        epoch_moved: true,
        protocol: false,
        message: "the shard published new epochs twice while the batch was in flight".to_string(),
    })
}

/// One pinned chunk call with transparent reconnect: a transport error drops
/// the cached client and re-dials once before giving up.
fn call_shard(
    slot: &mut ShardSlot,
    chunk: &[Op],
    at_epoch: Option<u64>,
    config: &RouterConfig,
) -> Result<Batch, ClientError> {
    let mut redialed = false;
    loop {
        if slot.client.is_none() {
            match Client::connect_with(slot.addr, config.client.clone()) {
                Ok(client) => slot.client = Some(client),
                Err(err) => return Err(ClientError::Io(err)),
            }
        }
        let client = slot.client.as_mut().expect("dialed above");
        match client.call_with_retry(&config.retry, |c| c.batch_at(chunk.to_vec(), at_epoch)) {
            Ok(batch) => return Ok(batch),
            Err(err @ (ClientError::Io(_) | ClientError::Frame(_))) => {
                slot.client = None;
                if redialed {
                    return Err(err);
                }
                redialed = true;
            }
            Err(err) => return Err(err),
        }
    }
}

fn classify(err: ClientError) -> ShardFailure {
    match err {
        ClientError::Protocol(message) => ShardFailure {
            epoch_moved: false,
            protocol: true,
            message,
        },
        ClientError::Server {
            kind: ErrorKind::EpochUnavailable,
            message,
        } => ShardFailure {
            epoch_moved: true,
            protocol: false,
            message,
        },
        other => ShardFailure {
            epoch_moved: false,
            protocol: false,
            message: other.to_string(),
        },
    }
}

/// Merge one broadcast op's per-shard partial results into the answer the
/// unsharded engine would give.
fn merge_broadcast(op: &Op, parts: Vec<(usize, OpResult)>) -> Result<OpResult, RouterError> {
    match op {
        Op::Epoch => Ok(OpResult::Empty),
        Op::Relations => {
            let mut names = BTreeSet::new();
            for (shard, part) in parts {
                let OpResult::Relations(part) = part else {
                    return Err(mismatch(shard, "relations", &part));
                };
                names.extend(part);
            }
            Ok(OpResult::Relations(names.into_iter().collect()))
        }
        Op::Stats => {
            let (mut variables, mut factors, mut weights, mut catalogued) = (0, 0, 0, 0);
            for (shard, part) in parts {
                let OpResult::Stats {
                    num_variables,
                    num_factors,
                    num_weights,
                    num_catalogued,
                } = part
                else {
                    return Err(mismatch(shard, "stats", &part));
                };
                variables += num_variables;
                factors += num_factors;
                // Weights belong to rules, and every shard compiles the full
                // program: the weight set is replicated, not partitioned.
                weights = num_weights.max(weights);
                catalogued += num_catalogued;
            }
            Ok(OpResult::Stats {
                num_variables: variables,
                num_factors: factors,
                num_weights: weights,
                num_catalogued: catalogued,
            })
        }
        Op::Query { spec, .. } => {
            let mut facts = Vec::new();
            for (shard, part) in parts {
                let OpResult::Facts(part) = part else {
                    return Err(mismatch(shard, "facts", &part));
                };
                facts.extend(part);
            }
            let limit = spec.limit.unwrap_or(usize::MAX);
            match spec.top_k {
                Some(k) => {
                    // The exact comparator of `FactQuery::run`'s ranked path:
                    // probability descending, ties by tuple ascending.
                    facts.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.0.cmp(&b.0))
                    });
                    facts.truncate(k);
                    Ok(OpResult::Facts(
                        facts.into_iter().skip(spec.offset).take(limit).collect(),
                    ))
                }
                None => {
                    // Shards are tuple-disjoint, so sorting the union by
                    // tuple restores the single-index scan order.
                    facts.sort_by(|a, b| a.0.cmp(&b.0));
                    Ok(OpResult::Facts(
                        facts.into_iter().skip(spec.offset).take(limit).collect(),
                    ))
                }
            }
        }
        Op::AllFacts { offset, limit, .. } => {
            let mut facts = Vec::new();
            for (shard, part) in parts {
                let OpResult::AllFacts(part) = part else {
                    return Err(mismatch(shard, "all_facts", &part));
                };
                facts.extend(part);
            }
            facts.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            Ok(OpResult::AllFacts(
                facts.into_iter().skip(*offset).take(*limit).collect(),
            ))
        }
        Op::ProbabilityOf { .. } | Op::Sleep { .. } => Err(RouterError::BadRequest(
            "keyed and fault-injection ops are never broadcast".to_string(),
        )),
    }
}

fn mismatch(shard: usize, wanted: &str, got: &OpResult) -> RouterError {
    RouterError::Protocol {
        shard,
        message: format!("expected a {wanted} result, got {got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::tuple;

    fn hash_router(num_shards: usize) -> Router {
        let addrs: Vec<SocketAddr> = (0..num_shards)
            .map(|i| format!("127.0.0.1:{}", 40000 + i).parse().unwrap())
            .collect();
        Router::new(
            ShardAssignment::HashKey { column: 0 },
            &addrs,
            RouterConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn broadcast_and_keyed_ops_pick_the_right_targets() {
        let router = hash_router(4);
        assert_eq!(router.target_of(&Op::Epoch).unwrap(), Target::All);
        assert_eq!(router.target_of(&Op::Relations).unwrap(), Target::All);
        let keyed = Op::probability_of("Fact", tuple![7i64, 1i64]);
        let Target::One(shard) = router.target_of(&keyed).unwrap() else {
            panic!("keyed op must route to one shard");
        };
        assert!(shard < 4);
        assert!(matches!(
            router.target_of(&Op::Sleep { millis: 1 }),
            Err(RouterError::BadRequest(_))
        ));
    }

    #[test]
    fn pagination_rewrites_widen_the_window_and_clamp_to_the_wire_cap() {
        let op = Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.5,
                top_k: None,
                offset: 10,
                limit: Some(5),
            },
        };
        let Op::Query { spec, .. } = rewrite_for_shard(&op) else {
            panic!("rewrite preserves the op kind");
        };
        assert_eq!(spec.offset, 0);
        assert_eq!(spec.limit, Some(15));

        let op = Op::AllFacts {
            min_probability: 0.0,
            offset: 3,
            limit: usize::MAX,
        };
        let Op::AllFacts { offset, limit, .. } = rewrite_for_shard(&op) else {
            panic!("rewrite preserves the op kind");
        };
        assert_eq!(offset, 0);
        assert_eq!(limit, WIRE_USIZE_MAX);
    }

    #[test]
    fn top_k_merge_reranks_across_shards() {
        let op = Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.0,
                top_k: Some(2),
                offset: 0,
                limit: None,
            },
        };
        let parts = vec![
            (
                0,
                OpResult::Facts(vec![(tuple![2i64], 0.9), (tuple![4i64], 0.2)]),
            ),
            (
                1,
                OpResult::Facts(vec![(tuple![1i64], 0.8), (tuple![3i64], 0.7)]),
            ),
        ];
        let OpResult::Facts(merged) = merge_broadcast(&op, parts).unwrap() else {
            panic!("query merges into facts");
        };
        assert_eq!(merged, vec![(tuple![2i64], 0.9), (tuple![1i64], 0.8)]);
    }

    #[test]
    fn unranked_merge_restores_tuple_order_and_applies_the_global_window() {
        let op = Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.0,
                top_k: None,
                offset: 1,
                limit: Some(2),
            },
        };
        let parts = vec![
            (
                0,
                OpResult::Facts(vec![(tuple![2i64], 0.5), (tuple![5i64], 0.5)]),
            ),
            (
                1,
                OpResult::Facts(vec![(tuple![1i64], 0.5), (tuple![4i64], 0.5)]),
            ),
        ];
        let OpResult::Facts(merged) = merge_broadcast(&op, parts).unwrap() else {
            panic!("query merges into facts");
        };
        assert_eq!(merged, vec![(tuple![2i64], 0.5), (tuple![4i64], 0.5)]);
    }

    #[test]
    fn stats_merge_sums_and_relations_merge_unions() {
        let parts = vec![
            (
                0,
                OpResult::Stats {
                    num_variables: 1,
                    num_factors: 2,
                    num_weights: 3,
                    num_catalogued: 4,
                },
            ),
            (
                1,
                OpResult::Stats {
                    num_variables: 10,
                    num_factors: 20,
                    num_weights: 30,
                    num_catalogued: 40,
                },
            ),
        ];
        let merged = merge_broadcast(&Op::Stats, parts).unwrap();
        assert_eq!(
            merged,
            OpResult::Stats {
                num_variables: 11,
                num_factors: 22,
                // Replicated across shards, so merged by max, not sum.
                num_weights: 30,
                num_catalogued: 44,
            }
        );

        let parts = vec![
            (0, OpResult::Relations(vec!["B".into(), "A".into()])),
            (1, OpResult::Relations(vec!["A".into(), "C".into()])),
        ];
        let OpResult::Relations(names) = merge_broadcast(&Op::Relations, parts).unwrap() else {
            panic!("relations merge");
        };
        assert_eq!(names, vec!["A".to_string(), "B".into(), "C".into()]);
    }

    #[test]
    fn result_type_mismatches_surface_as_protocol_errors() {
        let parts = vec![(0, OpResult::Empty)];
        let err = merge_broadcast(&Op::Relations, parts).unwrap_err();
        assert!(matches!(err, RouterError::Protocol { shard: 0, .. }));
        assert_eq!(err.kind(), ErrorKind::Internal);
    }

    #[test]
    fn scalar_epoch_pins_are_rejected_at_the_front_door() {
        let mut router = hash_router(2);
        let request = Request {
            ops: vec![Op::Epoch],
            at_epoch: Some(3),
        };
        let Response::Error { kind, .. } = router.execute(&request) else {
            panic!("pinned requests must be refused");
        };
        assert_eq!(kind, ErrorKind::BadRequest);
    }

    #[test]
    fn an_unreachable_shard_is_a_typed_error_not_a_hang() {
        // Nothing listens on these ports; connect_timeout bounds the dial.
        let mut router = Router::new(
            ShardAssignment::HashKey { column: 0 },
            &[
                "127.0.0.1:1".parse().unwrap(),
                "127.0.0.1:2".parse().unwrap(),
            ],
            RouterConfig {
                retry: RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                },
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let err = router.batch(&[Op::Epoch]).unwrap_err();
        assert!(matches!(err, RouterError::ShardUnavailable { .. }));
        assert_eq!(err.kind(), ErrorKind::ShardUnavailable);
        assert!(err.to_string().contains("unavailable"));
    }
}

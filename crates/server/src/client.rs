//! A blocking client for the [`crate::Server`] wire protocol.
//!
//! One [`Client`] owns one TCP connection and sends one batch at a time
//! (request, then response — the protocol keeps a single request in flight
//! per connection).  Typed server refusals — `overloaded` above all — arrive
//! as [`ClientError::Server`], distinct from transport failures, so callers
//! can implement retry-with-backoff against backpressure without string
//! matching.
//!
//! ```no_run
//! use dd_server::{Client, FactQuerySpec};
//!
//! let mut client = Client::connect("127.0.0.1:7171")?;
//! let epoch = client.epoch()?;
//! let facts = client.query(
//!     "MarriedMentions",
//!     FactQuerySpec { min_probability: 0.9, top_k: Some(10), ..Default::default() },
//! )?;
//! println!("epoch {epoch}: {} facts", facts.len());
//! # Ok::<(), dd_server::ClientError>(())
//! ```

use crate::protocol::{Batch, ErrorKind, FactQuerySpec, Op, OpResult, Request, Response};
use dd_relstore::Tuple;
use dd_wire::frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, send, socket death).
    Io(io::Error),
    /// The response stream violated framing (truncated, oversized, closed
    /// mid-exchange).
    Frame(FrameError),
    /// The server answered, but not with a document this client understands.
    Protocol(String),
    /// A typed refusal from the server — `overloaded`, `bad_request`, ...
    Server { kind: ErrorKind, message: String },
}

impl ClientError {
    /// True when the server refused with backpressure; retry after backoff.
    ///
    /// A queue-full refusal leaves the connection open, so retrying on the
    /// same [`Client`] works.  A *connection-cap* refusal (the message names
    /// the cap) also closes the socket — treat a transport error on the next
    /// call as the signal to reconnect before retrying.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                kind: ErrorKind::Overloaded,
                ..
            }
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Frame(err) => write!(f, "framing error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server { kind, message } => {
                write!(f, "server refused ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            ClientError::Frame(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> Self {
        ClientError::Frame(err)
    }
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame_bytes: MAX_FRAME_BYTES,
        })
    }

    /// Raise (or lower) the cap on response frames this client will accept.
    ///
    /// The default is [`MAX_FRAME_BYTES`] (16 MiB).  Response size is driven
    /// by what the client asks for — an `all_facts` sweep of a huge catalog
    /// with no `limit` can legitimately exceed the default, and an oversized
    /// response frame is unrecoverable on this connection (the payload is
    /// never consumed), so size the cap to the largest page you request.
    pub fn set_max_frame_bytes(&mut self, cap: usize) {
        self.max_frame_bytes = cap;
    }

    /// Send one batch and wait for its response.  Returns the batch (epoch +
    /// per-op results) on success, or the typed refusal as
    /// [`ClientError::Server`].
    pub fn batch(&mut self, ops: Vec<Op>) -> Result<Batch, ClientError> {
        let request = Request { ops };
        write_frame(&mut self.stream, &request.encode())?;
        self.stream.flush()?;
        let payload = read_frame(&mut self.stream, self.max_frame_bytes)?;
        match Response::decode(&payload).map_err(ClientError::Protocol)? {
            Response::Batch(batch) => Ok(batch),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
        }
    }

    /// The server's current epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        Ok(self.batch(vec![Op::Epoch])?.epoch)
    }

    /// Sorted names of the catalogued variable relations.
    pub fn relations(&mut self) -> Result<Vec<String>, ClientError> {
        match self.batch(vec![Op::Relations])?.results.pop() {
            Some(OpResult::Relations(names)) => Ok(names),
            other => Err(Self::unexpected("relations", &other)),
        }
    }

    /// Marginal probability of one tuple, with the epoch it was read at.
    pub fn probability_of(
        &mut self,
        relation: impl Into<String>,
        tuple: Tuple,
    ) -> Result<(u64, Option<f64>), ClientError> {
        let mut batch = self.batch(vec![Op::probability_of(relation, tuple)])?;
        match batch.results.pop() {
            Some(OpResult::Probability(p)) => Ok((batch.epoch, p)),
            other => Err(Self::unexpected("probability", &other)),
        }
    }

    /// Run one paginated/top-k fact query.
    pub fn query(
        &mut self,
        relation: impl Into<String>,
        spec: FactQuerySpec,
    ) -> Result<Vec<(Tuple, f64)>, ClientError> {
        match self.batch(vec![Op::query(relation, spec)])?.results.pop() {
            Some(OpResult::Facts(facts)) => Ok(facts),
            other => Err(Self::unexpected("facts", &other)),
        }
    }

    fn unexpected(wanted: &str, got: &Option<OpResult>) -> ClientError {
        ClientError::Protocol(format!("expected a {wanted} result, got {got:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_refusals_are_recognizable() {
        let err = ClientError::Server {
            kind: ErrorKind::Overloaded,
            message: "queue full".to_string(),
        };
        assert!(err.is_overloaded());
        assert!(err.to_string().contains("overloaded"));
        assert!(!ClientError::Protocol("x".to_string()).is_overloaded());
    }

    #[test]
    fn errors_chain_their_sources() {
        let err = ClientError::from(io::Error::new(io::ErrorKind::ConnectionRefused, "nope"));
        assert!(std::error::Error::source(&err).is_some());
        let err = ClientError::from(FrameError::Closed);
        assert!(err.to_string().contains("closed"));
    }
}

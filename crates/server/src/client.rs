//! A blocking client for the [`crate::Server`] wire protocol.
//!
//! One [`Client`] owns one TCP connection and sends one batch at a time
//! (request, then response — the protocol keeps a single request in flight
//! per connection).  Typed server refusals — `overloaded` above all — arrive
//! as [`ClientError::Server`], distinct from transport failures, so callers
//! can implement retry-with-backoff against backpressure without string
//! matching.
//!
//! ```no_run
//! use dd_server::{Client, FactQuerySpec};
//!
//! let mut client = Client::connect("127.0.0.1:7171")?;
//! let epoch = client.epoch()?;
//! let facts = client.query(
//!     "MarriedMentions",
//!     FactQuerySpec { min_probability: 0.9, top_k: Some(10), ..Default::default() },
//! )?;
//! println!("epoch {epoch}: {} facts", facts.len());
//! # Ok::<(), dd_server::ClientError>(())
//! ```

use crate::protocol::{Batch, ErrorKind, FactQuerySpec, Op, OpResult, Request, Response};
use dd_relstore::Tuple;
use dd_wire::frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection-level knobs of a [`Client`] (see [`Client::connect_with`]).
///
/// Both timeouts default to `None` — block indefinitely, the plain
/// `TcpStream` behavior — which is right for trusted local serving.  A
/// router fanning a batch out across shards sets both, so one dead or
/// wedged shard turns into a timely typed error instead of hanging the
/// whole batch.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Cap on establishing the TCP connection (per resolved address).
    pub connect_timeout: Option<Duration>,
    /// Cap on waiting for any single read while receiving a response.
    pub read_timeout: Option<Duration>,
}

/// Bounded exponential backoff for retrying `overloaded` refusals
/// (see [`Client::call_with_retry`]).
///
/// Attempt `n` (0-based) sleeps a jittered duration drawn from
/// `[backoff/2, backoff]` where `backoff = initial_backoff * 2^n`, capped at
/// `max_backoff`.  Jitter is deterministic per [`RetryPolicy::jitter_seed`]
/// (SplitMix64), so tests and reproductions see identical schedules while
/// distinct clients — distinct seeds — still decorrelate their retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Six attempts backing off 10ms → 320ms: rides out about a second of
    /// sustained overload before giving up.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `attempt` (0-based).
    fn backoff_for(&self, attempt: u32, rng: &mut u64) -> Duration {
        let base = self
            .initial_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let half = base / 2;
        let span = base.saturating_sub(half).as_nanos() as u64;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(rng) % (span + 1)
        };
        half + Duration::from_nanos(jitter)
    }
}

/// SplitMix64: tiny, seedable, and plenty for decorrelating retry sleeps.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, send, socket death).
    Io(io::Error),
    /// The response stream violated framing (truncated, oversized, closed
    /// mid-exchange).
    Frame(FrameError),
    /// The server answered, but not with a document this client understands.
    Protocol(String),
    /// A typed refusal from the server — `overloaded`, `bad_request`, ...
    Server { kind: ErrorKind, message: String },
}

impl ClientError {
    /// True when the server refused with backpressure; retry after backoff.
    ///
    /// A queue-full refusal leaves the connection open, so retrying on the
    /// same [`Client`] works.  A *connection-cap* refusal (the message names
    /// the cap) also closes the socket — treat a transport error on the next
    /// call as the signal to reconnect before retrying.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                kind: ErrorKind::Overloaded,
                ..
            }
        )
    }

    /// True when the server refused because it is shutting down.  The server
    /// closes the connection after this refusal, so a retry must reconnect
    /// first — [`Client::call_with_retry`] does exactly that, which is how a
    /// shard restart becomes a ride-out instead of a hard failure.
    pub fn is_shutting_down(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                kind: ErrorKind::ShuttingDown,
                ..
            }
        )
    }

    /// True for the refusals [`Client::call_with_retry`] spends budget on:
    /// `overloaded` (transient backpressure) and `shutting_down` (a restart
    /// in progress).  Everything else — transport errors, framing errors,
    /// other refusals — is not load and returns immediately.
    pub fn is_retryable(&self) -> bool {
        self.is_overloaded() || self.is_shutting_down()
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Frame(err) => write!(f, "framing error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server { kind, message } => {
                write!(f, "server refused ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            ClientError::Frame(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> Self {
        ClientError::Frame(err)
    }
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
    /// The addresses `connect` resolved, kept so [`Client::reconnect`] can
    /// re-dial the same server after a restart.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
}

impl Client {
    /// Connect to a server with default (blocking, no-timeout) settings.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit connection/read timeouts.
    ///
    /// ```no_run
    /// use dd_server::{Client, ClientConfig};
    /// use std::time::Duration;
    ///
    /// let client = Client::connect_with(
    ///     "127.0.0.1:7171",
    ///     ClientConfig {
    ///         connect_timeout: Some(Duration::from_millis(250)),
    ///         read_timeout: Some(Duration::from_secs(5)),
    ///     },
    /// )?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Client::dial(&addrs, &config)?;
        Ok(Client {
            stream,
            max_frame_bytes: MAX_FRAME_BYTES,
            addrs,
            config,
        })
    }

    fn dial(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
        let mut last_err = None;
        for addr in addrs {
            let attempt = match config.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Drop the current connection and dial the same server again (same
    /// resolved addresses, same [`ClientConfig`]).  Used after a
    /// `shutting_down` refusal — the server closes the socket behind that
    /// refusal, so the next attempt needs a fresh connection.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Client::dial(&self.addrs, &self.config)?;
        Ok(())
    }

    /// Raise (or lower) the cap on response frames this client will accept.
    ///
    /// The default is [`MAX_FRAME_BYTES`] (16 MiB).  Response size is driven
    /// by what the client asks for — an `all_facts` sweep of a huge catalog
    /// with no `limit` can legitimately exceed the default, and an oversized
    /// response frame is unrecoverable on this connection (the payload is
    /// never consumed), so size the cap to the largest page you request.
    pub fn set_max_frame_bytes(&mut self, cap: usize) {
        self.max_frame_bytes = cap;
    }

    /// Send one batch and wait for its response.  Returns the batch (epoch +
    /// per-op results) on success, or the typed refusal as
    /// [`ClientError::Server`].
    pub fn batch(&mut self, ops: Vec<Op>) -> Result<Batch, ClientError> {
        self.batch_at(ops, None)
    }

    /// Send one batch pinned to a specific server epoch (`at_epoch`); the
    /// server answers `epoch_unavailable` if its current snapshot differs.
    /// Routers use this to keep multi-chunk shard requests on one cut.
    pub fn batch_at(&mut self, ops: Vec<Op>, at_epoch: Option<u64>) -> Result<Batch, ClientError> {
        let request = Request { ops, at_epoch };
        write_frame(&mut self.stream, &request.encode())?;
        self.stream.flush()?;
        let payload = read_frame(&mut self.stream, self.max_frame_bytes)?;
        match Response::decode(&payload).map_err(ClientError::Protocol)? {
            Response::Batch(batch) => Ok(batch),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
        }
    }

    /// The server's current epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        Ok(self.batch(vec![Op::Epoch])?.epoch)
    }

    /// Sorted names of the catalogued variable relations.
    pub fn relations(&mut self) -> Result<Vec<String>, ClientError> {
        match self.batch(vec![Op::Relations])?.results.pop() {
            Some(OpResult::Relations(names)) => Ok(names),
            other => Err(Self::unexpected("relations", &other)),
        }
    }

    /// Marginal probability of one tuple, with the epoch it was read at.
    pub fn probability_of(
        &mut self,
        relation: impl Into<String>,
        tuple: Tuple,
    ) -> Result<(u64, Option<f64>), ClientError> {
        let mut batch = self.batch(vec![Op::probability_of(relation, tuple)])?;
        match batch.results.pop() {
            Some(OpResult::Probability(p)) => Ok((batch.epoch, p)),
            other => Err(Self::unexpected("probability", &other)),
        }
    }

    /// Run one paginated/top-k fact query.
    pub fn query(
        &mut self,
        relation: impl Into<String>,
        spec: FactQuerySpec,
    ) -> Result<Vec<(Tuple, f64)>, ClientError> {
        match self.batch(vec![Op::query(relation, spec)])?.results.pop() {
            Some(OpResult::Facts(facts)) => Ok(facts),
            other => Err(Self::unexpected("facts", &other)),
        }
    }

    /// Run `call`, retrying with bounded exponential backoff while the server
    /// refuses for transient reasons ([`ClientError::is_retryable`]).
    ///
    /// `overloaded` refusals leave the connection healthy, so their retries
    /// reuse it.  `shutting_down` refusals are followed by a socket close on
    /// the server side — here the backoff sleep is followed by a
    /// [`Client::reconnect`] attempt, so a shard restarting behind the same
    /// address is ridden out within the budget (a failed reconnect leaves
    /// the dead socket in place, and the next attempt's transport error
    /// returns immediately).  Transport errors, framing errors, and every
    /// other server refusal return immediately: they are not load, and
    /// retrying them blind would mask real failures.  The last attempt's
    /// error is returned when the budget runs out.
    ///
    /// ```no_run
    /// use dd_server::{Client, RetryPolicy};
    ///
    /// let mut client = Client::connect("127.0.0.1:7171")?;
    /// let epoch = client.call_with_retry(&RetryPolicy::default(), |c| c.epoch())?;
    /// # Ok::<(), dd_server::ClientError>(())
    /// ```
    pub fn call_with_retry<T>(
        &mut self,
        policy: &RetryPolicy,
        mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut rng = policy.jitter_seed;
        for attempt in 0..attempts {
            match call(self) {
                Err(err) if err.is_retryable() && attempt + 1 < attempts => {
                    std::thread::sleep(policy.backoff_for(attempt, &mut rng));
                    if err.is_shutting_down() {
                        // The server closed this socket behind its refusal;
                        // dial again so the next attempt has a live one.  A
                        // refused dial (still restarting) is left for the
                        // next attempt to surface as a transport error.
                        let _ = self.reconnect();
                    }
                }
                other => return other,
            }
        }
        unreachable!("the final attempt always returns from the loop")
    }

    fn unexpected(wanted: &str, got: &Option<OpResult>) -> ClientError {
        ClientError::Protocol(format!("expected a {wanted} result, got {got:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_refusals_are_recognizable() {
        let err = ClientError::Server {
            kind: ErrorKind::Overloaded,
            message: "queue full".to_string(),
        };
        assert!(err.is_overloaded());
        assert!(err.to_string().contains("overloaded"));
        assert!(!ClientError::Protocol("x".to_string()).is_overloaded());
    }

    #[test]
    fn errors_chain_their_sources() {
        let err = ClientError::from(io::Error::new(io::ErrorKind::ConnectionRefused, "nope"));
        assert!(std::error::Error::source(&err).is_some());
        let err = ClientError::from(FrameError::Closed);
        assert!(err.to_string().contains("closed"));
    }

    #[test]
    fn backoff_schedule_is_bounded_exponential_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 42,
        };
        let mut rng_a = policy.jitter_seed;
        let mut rng_b = policy.jitter_seed;
        for attempt in 0..8 {
            let d = policy.backoff_for(attempt, &mut rng_a);
            // Jitter stays within [base/2, base], and base is capped.
            let base = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(100));
            assert!(d >= base / 2, "attempt {attempt}: {d:?} below half base");
            assert!(d <= base, "attempt {attempt}: {d:?} above base");
            // Same seed, same schedule.
            assert_eq!(d, policy.backoff_for(attempt, &mut rng_b));
        }
        // Shift overflow on huge attempt numbers must not panic.
        let mut rng = 1;
        assert!(policy.backoff_for(u32::MAX, &mut rng) <= Duration::from_millis(100));
    }

    /// A client connected to a listener that never answers — good enough as
    /// `self` for closure-driven retry tests that never touch the socket.
    fn idle_client() -> (std::net::TcpListener, Client) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = Client::connect(listener.local_addr().unwrap()).unwrap();
        (listener, client)
    }

    fn overloaded() -> ClientError {
        ClientError::Server {
            kind: ErrorKind::Overloaded,
            message: "queue full".to_string(),
        }
    }

    #[test]
    fn retry_budget_is_spent_only_on_overload() {
        let tiny = RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(20),
            jitter_seed: 1,
        };
        let (_listener, mut client) = idle_client();

        // Persistent overload: all four attempts spent, last error returned.
        let mut attempts = 0;
        let err = client
            .call_with_retry(&tiny, |_| -> Result<(), ClientError> {
                attempts += 1;
                Err(overloaded())
            })
            .unwrap_err();
        assert_eq!(attempts, 4);
        assert!(err.is_overloaded());

        // Non-overload errors return immediately: they are not backpressure.
        let mut attempts = 0;
        let err = client
            .call_with_retry(&tiny, |_| -> Result<(), ClientError> {
                attempts += 1;
                Err(ClientError::Protocol("bad document".to_string()))
            })
            .unwrap_err();
        assert_eq!(attempts, 1);
        assert!(!err.is_overloaded());

        // Success after transient overload.
        let mut attempts = 0;
        let value = client
            .call_with_retry(&tiny, |_| {
                attempts += 1;
                if attempts < 3 {
                    Err(overloaded())
                } else {
                    Ok(attempts)
                }
            })
            .unwrap();
        assert_eq!(value, 3);
    }

    #[test]
    fn shutting_down_refusals_are_retried_with_a_reconnect() {
        let tiny = RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(20),
            jitter_seed: 1,
        };
        let (listener, mut client) = idle_client();

        // A shutting_down refusal spends budget (it is a restart in
        // progress, not a dead end) and triggers a reconnect between
        // attempts — observable as fresh connections on the listener.
        listener.set_nonblocking(true).unwrap();
        // Drain the initial connection so only retry-driven dials remain.
        while listener.accept().is_ok() {}
        let mut attempts = 0;
        let value = client
            .call_with_retry(&tiny, |_| {
                attempts += 1;
                if attempts < 3 {
                    Err(ClientError::Server {
                        kind: ErrorKind::ShuttingDown,
                        message: "server shutting down".to_string(),
                    })
                } else {
                    Ok(attempts)
                }
            })
            .unwrap();
        assert_eq!(value, 3, "two shutting_down refusals then success");
        let mut reconnects = 0;
        while listener.accept().is_ok() {
            reconnects += 1;
        }
        assert_eq!(reconnects, 2, "one fresh dial per shutting_down refusal");

        // Budget exhaustion returns the last shutting_down error.
        let mut attempts = 0;
        let err = client
            .call_with_retry(&tiny, |_| -> Result<(), ClientError> {
                attempts += 1;
                Err(ClientError::Server {
                    kind: ErrorKind::ShuttingDown,
                    message: "still going down".to_string(),
                })
            })
            .unwrap_err();
        assert_eq!(attempts, 4);
        assert!(err.is_shutting_down());
        assert!(err.is_retryable());
    }

    #[test]
    fn call_with_retry_rides_out_a_flooded_server() {
        use crate::server::{Server, ServerConfig};
        use deepdive::{CatalogShards, Snapshot, SnapshotReader};
        use std::collections::HashMap;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let mut catalog = HashMap::new();
        catalog.insert(("Fact".to_string(), dd_relstore::tuple![1i64]), 0usize);
        let reader = SnapshotReader::fixed(Snapshot::synthetic(
            7,
            vec![0.9],
            CatalogShards::build(catalog.iter(), 7),
        ));
        // One worker, one queue slot: two concurrent sleeps saturate it.
        let server = Server::bind(
            "127.0.0.1:0",
            reader,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                allow_sleep_op: true,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // Flooders hold the worker (and the queue slot) with sleep batches
        // until told to stop; refusals they receive themselves are expected.
        let stop = Arc::new(AtomicBool::new(false));
        let flooders: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    while !stop.load(Ordering::Acquire) {
                        let _ = c.batch(vec![Op::Sleep { millis: 40 }]);
                    }
                })
            })
            .collect();

        // The flood must produce at least one typed overload refusal.
        let mut client = Client::connect(addr).unwrap();
        let mut saw_overload = false;
        for _ in 0..200 {
            match client.epoch() {
                Err(err) if err.is_overloaded() => {
                    saw_overload = true;
                    break;
                }
                Ok(_) => continue, // slipped into a free slot; flood again
                Err(err) => panic!("unexpected failure under flood: {err}"),
            }
        }
        assert!(saw_overload, "three flooders never filled a 1-slot queue");

        // Overload is transient: the flood lifts ~100ms from now.  A plain
        // call right now is (very likely) refused, but the backoff budget
        // spans well past the flood, so call_with_retry must ride it out on
        // the same connection.
        let lifter = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                stop.store(true, Ordering::Release);
            })
        };
        let policy = RetryPolicy {
            max_attempts: 50,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 7,
        };
        let epoch = client.call_with_retry(&policy, |c| c.epoch()).unwrap();
        assert_eq!(epoch, 7);

        lifter.join().unwrap();
        for f in flooders {
            f.join().unwrap();
        }
        server.shutdown();
    }
}

//! # dd-server — the network front door for snapshot serving
//!
//! Everything the engine publishes through its lock-free
//! [`deepdive::SnapshotReader`] becomes reachable from outside the process
//! here: a TCP server speaking a length-prefixed JSON protocol
//! ([`dd_wire`]), with an acceptor, a **bounded** request queue, and a small
//! persistent worker pool.  `crates.io` is unreachable in this workspace, so
//! the stack is hand-rolled on `std::net` in the same spirit as the
//! `vendor/` stand-ins — no tokio, no serde_json.
//!
//! Three properties define the design (see [`server`] for the full
//! lifecycle):
//!
//! 1. **Batch = consistency unit.**  A request is a batch of operations; the
//!    worker pins one `Arc<Snapshot>` for the whole batch, so every answer
//!    in it comes from a single epoch even while `run_update` publishes new
//!    epochs concurrently.
//! 2. **Backpressure is typed, not implicit.**  The request queue is
//!    bounded; when full, clients receive an `overloaded` error response
//!    immediately instead of the server buffering unboundedly.
//! 3. **Hostile bytes can't take the server down.**  Malformed frames,
//!    truncated prefixes, oversized declarations, and fuzzed garbage all
//!    produce typed error responses or clean closes — never a panic, never a
//!    wedged connection.
//!
//! ```no_run
//! use deepdive::{DeepDive, EngineConfig};
//! use dd_server::{Client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut engine: DeepDive = unimplemented!();
//! engine.initial_run()?;
//! let server = Server::bind("127.0.0.1:0", engine.reader(), ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! println!("serving epoch {}", client.epoch()?);
//! // ... run_update on the engine while clients keep reading ...
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use protocol::{
    Batch, DecodeError, ErrorKind, FactQuerySpec, Op, OpResult, Request, Response,
    MAX_OPS_PER_BATCH,
};
pub use server::{BatchHandler, Server, ServerConfig, ServerStats, SnapshotBatchHandler};

//! The request/response protocol spoken over [`dd_wire::frame`] frames.
//!
//! One frame carries one JSON document.  A client sends a **batch** — an
//! object `{"ops": [...]}` with up to [`MAX_OPS_PER_BATCH`] operations — and
//! receives exactly one response frame for it.  Batching is the unit of
//! consistency: the server pins **one** snapshot per batch, so every
//! operation in a batch answers from the same epoch (the analytical-reads
//! isolation the snapshot layer provides in-process, carried over the wire).
//!
//! A success response is `{"ok": true, "epoch": E, "results": [...]}` with
//! one result per operation, in order.  A failure is
//! `{"ok": false, "error": {"kind": "...", "message": "..."}}` — always a
//! frame, never a dropped connection, so clients can distinguish *typed*
//! overload/malformed-input conditions from transport failures.
//!
//! # Routing metadata (sharded deployments)
//!
//! Two optional envelope fields exist for the `dd-router` scatter-gather
//! front door; unsharded clients and servers never need them:
//!
//! * A request may carry `"at_epoch": E` to demand that the batch be served
//!   from exactly epoch `E`.  A server whose current snapshot is at any
//!   other epoch answers with a typed [`ErrorKind::EpochUnavailable`] error
//!   instead of silently serving a different cut.  The router uses this to
//!   pin multi-chunk per-shard requests to one snapshot.
//! * A batch response may carry `"epochs": [e0, null, e2, ...]` — the
//!   **cross-shard epoch vector**: entry `i` is the epoch shard `i`'s
//!   answers came from, `null` for shards the batch never consulted.  The
//!   scalar `epoch` field then carries the maximum consulted entry as a
//!   coarse cluster version; the vector is authoritative.
//!
//! # Operations
//!
//! | `op`             | arguments                                              | result |
//! |------------------|--------------------------------------------------------|--------|
//! | `epoch`          | —                                                      | `{}` (epoch is in the envelope) |
//! | `relations`      | —                                                      | `{"relations": [..]}` |
//! | `stats`          | —                                                      | `{"num_variables", "num_factors", "num_weights", "num_catalogued"}` |
//! | `probability_of` | `relation`, `tuple`                                    | `{"probability": p \| null}` |
//! | `query`          | `relation`, `min_probability?`, `top_k?`, `offset?`, `limit?` | `{"facts": [{"tuple", "probability"}, ..]}` |
//! | `all_facts`      | `min_probability?`, `offset?`, `limit?`                | `{"cross_relation": true, "facts": [{"relation", "tuple", "probability"}, ..]}` |
//! | `sleep`          | `millis`                                               | `{}` (fault-injection; rejected unless the server enables it) |
//!
//! # Value encoding
//!
//! Tuples are JSON arrays.  `Int` is a plain integral number, `Text` a
//! string, `Bool` a boolean, `Null` is `null`, and `Float` is tagged as
//! `{"float": x}` so `Value::Float(2.0)` and `Value::Int(2)` — distinct
//! tuple keys in the store — stay distinct on the wire.  Integers round-trip
//! exactly up to ±2⁵³ (the JSON number mantissa); KBC ids are far below that.

use dd_relstore::{Tuple, Value};
use dd_wire::json::{self, Json};

/// Hard cap on operations per batch; a request above it is a `bad_request`.
pub const MAX_OPS_PER_BATCH: usize = 1024;

/// Pagination and ranking parameters of a [`Op::Query`], mirroring
/// `deepdive::FactQuery`'s builder surface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FactQuerySpec {
    /// Keep only facts with probability at least this.
    pub min_probability: f64,
    /// Keep only the `k` most probable facts (switches result order to
    /// descending probability).
    pub top_k: Option<usize>,
    /// Skip the first `n` facts of the ordered result.
    pub offset: usize,
    /// Return at most `n` facts after the offset.
    pub limit: Option<usize>,
}

/// One operation inside a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// The current epoch (carried by the response envelope; the result slot
    /// is empty).
    Epoch,
    /// Sorted names of the catalogued variable relations.
    Relations,
    /// Graph-level statistics of the pinned snapshot.
    Stats,
    /// Marginal probability of one tuple of a variable relation.
    ProbabilityOf { relation: String, tuple: Tuple },
    /// A paginated/top-k fact query against one relation — the primary read
    /// primitive of the wire protocol.
    Query {
        relation: String,
        spec: FactQuerySpec,
    },
    /// Paginated facts across every relation, in (relation, tuple) order.
    AllFacts {
        min_probability: f64,
        offset: usize,
        limit: usize,
    },
    /// Fault-injection: hold the worker for `millis` before answering.  The
    /// server rejects it unless explicitly enabled (tests use it to make
    /// backpressure deterministic).
    Sleep { millis: u64 },
}

impl Op {
    /// Convenience constructor for [`Op::ProbabilityOf`].
    pub fn probability_of(relation: impl Into<String>, tuple: Tuple) -> Self {
        Op::ProbabilityOf {
            relation: relation.into(),
            tuple,
        }
    }

    /// Convenience constructor for [`Op::Query`].
    pub fn query(relation: impl Into<String>, spec: FactQuerySpec) -> Self {
        Op::Query {
            relation: relation.into(),
            spec,
        }
    }
}

/// A decoded request: the operations of one batch, plus an optional epoch
/// pin (see the module docs on routing metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub ops: Vec<Op>,
    /// Demand this exact snapshot epoch; the server answers
    /// [`ErrorKind::EpochUnavailable`] if its current snapshot differs.
    pub at_epoch: Option<u64>,
}

impl Request {
    /// A request with no epoch pin (the common case).
    pub fn new(ops: Vec<Op>) -> Self {
        Request {
            ops,
            at_epoch: None,
        }
    }
}

/// Why a request payload could not be decoded, already classified into the
/// wire taxonomy: byte/JSON-level breakage is [`ErrorKind::MalformedFrame`],
/// well-formed JSON that is not a valid request is [`ErrorKind::BadRequest`].
/// The server copies both fields into its error response verbatim, so the
/// wire-visible kind never depends on message wording.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    pub kind: ErrorKind,
    pub message: String,
}

/// One operation's result, in batch order.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// [`Op::Epoch`] and [`Op::Sleep`] carry no payload.
    Empty,
    Relations(Vec<String>),
    Stats {
        num_variables: usize,
        num_factors: usize,
        num_weights: usize,
        num_catalogued: usize,
    },
    Probability(Option<f64>),
    Facts(Vec<(Tuple, f64)>),
    AllFacts(Vec<(String, Tuple, f64)>),
}

/// A successful batch response: one epoch, one result per operation, and —
/// when a router answered — the cross-shard epoch vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    pub epoch: u64,
    pub results: Vec<OpResult>,
    /// Per-shard epochs this batch was served from (`None` entries are
    /// shards the batch never consulted).  `None` as a whole on direct,
    /// unsharded responses.
    pub epochs: Option<Vec<Option<u64>>>,
}

/// The typed failure taxonomy of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame's payload was not a well-formed protocol document.
    MalformedFrame,
    /// Well-formed JSON, but not a valid request (unknown op, bad argument
    /// types, too many ops, disabled fault-injection op, ...).
    BadRequest,
    /// The bounded request queue was full — explicit backpressure.  Retry
    /// after a drain; the server never queues unboundedly.
    Overloaded,
    /// The frame declared a payload above the server's cap.
    Oversized,
    /// The server is shutting down and will not serve this request.
    ShuttingDown,
    /// A shard this batch needs is down or unreachable (router-originated;
    /// the batch degraded with a typed error instead of hanging).
    ShardUnavailable,
    /// The request pinned `at_epoch` to an epoch this server's current
    /// snapshot does not hold.
    EpochUnavailable,
    /// A server-side invariant failure (should not happen).
    Internal,
}

impl ErrorKind {
    /// The wire-level name of this kind.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::MalformedFrame => "malformed_frame",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Oversized => "oversized",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::ShardUnavailable => "shard_unavailable",
            ErrorKind::EpochUnavailable => "epoch_unavailable",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire-level name.
    pub fn from_wire_name(name: &str) -> Option<Self> {
        Some(match name {
            "malformed_frame" => ErrorKind::MalformedFrame,
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "oversized" => ErrorKind::Oversized,
            "shutting_down" => ErrorKind::ShuttingDown,
            "shard_unavailable" => ErrorKind::ShardUnavailable,
            "epoch_unavailable" => ErrorKind::EpochUnavailable,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// One response frame: a batch or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Batch(Batch),
    Error { kind: ErrorKind, message: String },
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Self {
        Response::Error {
            kind,
            message: message.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Value / tuple codec
// ---------------------------------------------------------------------------

/// Encode one store value (see the module docs for the mapping).
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Int(i) => Json::Number(*i as f64),
        Value::Text(s) => Json::String(s.to_string()),
        Value::Bool(b) => Json::Bool(*b),
        Value::Float(f) => Json::Object(vec![("float".to_string(), Json::Number(*f))]),
        Value::Null => Json::Null,
    }
}

/// Decode one store value.
pub fn value_from_json(json: &Json) -> Result<Value, String> {
    match json {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::String(s) => Ok(Value::text(s)),
        Json::Number(n) => {
            if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
                Ok(Value::Int(*n as i64))
            } else {
                Ok(Value::Float(*n))
            }
        }
        Json::Object(fields) => match fields.as_slice() {
            [(key, Json::Number(f))] if key == "float" => Ok(Value::Float(*f)),
            _ => Err("object values must be {\"float\": x}".to_string()),
        },
        Json::Array(_) => Err("arrays are tuples, not values".to_string()),
    }
}

/// Encode a tuple as a JSON array of values.
pub fn tuple_to_json(tuple: &Tuple) -> Json {
    Json::Array(tuple.values().iter().map(value_to_json).collect())
}

/// Decode a tuple from a JSON array of values.
pub fn tuple_from_json(json: &Json) -> Result<Tuple, String> {
    let items = json.as_array().ok_or("tuple must be an array")?;
    let values = items
        .iter()
        .map(value_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Tuple::new(values))
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

fn string_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

/// An optional non-negative integral field (`default` when absent).
fn usize_field(obj: &Json, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
            Ok(*n as usize)
        }
        Some(_) => Err(format!("\"{key}\" must be a small non-negative integer")),
    }
}

fn optional_usize_field(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => usize_field(obj, key, 0).map(Some),
    }
}

/// An optional non-negative integral field wide enough for epochs (exact up
/// to 2⁵³, far beyond any update count).
fn optional_u64_field(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Number(n))
            if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 =>
        {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(format!("\"{key}\" must be a non-negative integer")),
    }
}

fn f64_field(obj: &Json, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Number(n)) if n.is_finite() => Ok(*n),
        Some(_) => Err(format!("\"{key}\" must be a finite number")),
    }
}

fn op_to_json(op: &Op) -> Json {
    let mut fields = Vec::new();
    let name = match op {
        Op::Epoch => "epoch",
        Op::Relations => "relations",
        Op::Stats => "stats",
        Op::ProbabilityOf { relation, tuple } => {
            fields.push(("relation".to_string(), Json::String(relation.clone())));
            fields.push(("tuple".to_string(), tuple_to_json(tuple)));
            "probability_of"
        }
        Op::Query { relation, spec } => {
            fields.push(("relation".to_string(), Json::String(relation.clone())));
            fields.push((
                "min_probability".to_string(),
                Json::Number(spec.min_probability),
            ));
            if let Some(k) = spec.top_k {
                fields.push(("top_k".to_string(), Json::Number(k as f64)));
            }
            fields.push(("offset".to_string(), Json::Number(spec.offset as f64)));
            if let Some(l) = spec.limit {
                fields.push(("limit".to_string(), Json::Number(l as f64)));
            }
            "query"
        }
        Op::AllFacts {
            min_probability,
            offset,
            limit,
        } => {
            fields.push((
                "min_probability".to_string(),
                Json::Number(*min_probability),
            ));
            fields.push(("offset".to_string(), Json::Number(*offset as f64)));
            fields.push(("limit".to_string(), Json::Number(*limit as f64)));
            "all_facts"
        }
        Op::Sleep { millis } => {
            fields.push(("millis".to_string(), Json::Number(*millis as f64)));
            "sleep"
        }
    };
    fields.insert(0, ("op".to_string(), Json::String(name.to_string())));
    Json::Object(fields)
}

fn op_from_json(json: &Json) -> Result<Op, String> {
    let name = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or("operation is missing a string \"op\" field")?;
    match name {
        "epoch" => Ok(Op::Epoch),
        "relations" => Ok(Op::Relations),
        "stats" => Ok(Op::Stats),
        "probability_of" => Ok(Op::ProbabilityOf {
            relation: string_field(json, "relation")?,
            tuple: tuple_from_json(json.get("tuple").ok_or("missing \"tuple\"")?)?,
        }),
        "query" => Ok(Op::Query {
            relation: string_field(json, "relation")?,
            spec: FactQuerySpec {
                min_probability: f64_field(json, "min_probability", 0.0)?,
                top_k: optional_usize_field(json, "top_k")?,
                offset: usize_field(json, "offset", 0)?,
                limit: optional_usize_field(json, "limit")?,
            },
        }),
        "all_facts" => Ok(Op::AllFacts {
            min_probability: f64_field(json, "min_probability", 0.0)?,
            offset: usize_field(json, "offset", 0)?,
            limit: usize_field(json, "limit", u32::MAX as usize)?,
        }),
        "sleep" => Ok(Op::Sleep {
            millis: usize_field(json, "millis", 0)? as u64,
        }),
        other => Err(format!("unknown op \"{other}\"")),
    }
}

impl Request {
    /// Encode to the frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut fields = vec![(
            "ops".to_string(),
            Json::Array(self.ops.iter().map(op_to_json).collect()),
        )];
        if let Some(epoch) = self.at_epoch {
            fields.push(("at_epoch".to_string(), Json::Number(epoch as f64)));
        }
        Json::Object(fields).encode().into_bytes()
    }

    /// Decode a frame payload, classifying failures into the wire taxonomy
    /// (see [`DecodeError`]).
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let malformed = |message: String| DecodeError {
            kind: ErrorKind::MalformedFrame,
            message,
        };
        let bad_request = |message: String| DecodeError {
            kind: ErrorKind::BadRequest,
            message,
        };
        let text = std::str::from_utf8(payload)
            .map_err(|_| malformed("payload is not UTF-8".to_string()))?;
        let doc = json::parse(text).map_err(malformed)?;
        let ops_json = doc
            .get("ops")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_request("request must be an object with an \"ops\" array".into()))?;
        if ops_json.len() > MAX_OPS_PER_BATCH {
            return Err(bad_request(format!(
                "batch of {} ops exceeds the {MAX_OPS_PER_BATCH}-op cap",
                ops_json.len()
            )));
        }
        let ops = ops_json
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(bad_request)?;
        let at_epoch = optional_u64_field(&doc, "at_epoch").map_err(bad_request)?;
        Ok(Request { ops, at_epoch })
    }
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

fn fact_to_json(relation: Option<&str>, tuple: &Tuple, probability: f64) -> Json {
    let mut fields = Vec::new();
    if let Some(relation) = relation {
        fields.push(("relation".to_string(), Json::String(relation.to_string())));
    }
    fields.push(("tuple".to_string(), tuple_to_json(tuple)));
    fields.push(("probability".to_string(), Json::Number(probability)));
    Json::Object(fields)
}

fn result_to_json(result: &OpResult) -> Json {
    match result {
        OpResult::Empty => Json::Object(Vec::new()),
        OpResult::Relations(names) => Json::Object(vec![(
            "relations".to_string(),
            Json::Array(names.iter().map(|n| Json::String(n.clone())).collect()),
        )]),
        OpResult::Stats {
            num_variables,
            num_factors,
            num_weights,
            num_catalogued,
        } => Json::Object(vec![
            (
                "num_variables".to_string(),
                Json::Number(*num_variables as f64),
            ),
            ("num_factors".to_string(), Json::Number(*num_factors as f64)),
            ("num_weights".to_string(), Json::Number(*num_weights as f64)),
            (
                "num_catalogued".to_string(),
                Json::Number(*num_catalogued as f64),
            ),
        ]),
        OpResult::Probability(p) => Json::Object(vec![(
            "probability".to_string(),
            p.map_or(Json::Null, Json::Number),
        )]),
        OpResult::Facts(facts) => Json::Object(vec![(
            "facts".to_string(),
            Json::Array(
                facts
                    .iter()
                    .map(|(tuple, p)| fact_to_json(None, tuple, *p))
                    .collect(),
            ),
        )]),
        // The `cross_relation` marker keeps the variant decodable even when
        // the fact list is empty (per-fact `relation` keys can't tell then).
        OpResult::AllFacts(facts) => Json::Object(vec![
            ("cross_relation".to_string(), Json::Bool(true)),
            (
                "facts".to_string(),
                Json::Array(
                    facts
                        .iter()
                        .map(|(relation, tuple, p)| fact_to_json(Some(relation), tuple, *p))
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Decode one result slot.  The shape keys the variant: results are
/// self-describing, so a client does not need the request to interpret them
/// (though slots do arrive in request order).
fn result_from_json(json: &Json) -> Result<OpResult, String> {
    let fields = json.as_object().ok_or("result must be an object")?;
    if fields.is_empty() {
        return Ok(OpResult::Empty);
    }
    if let Some(names) = json.get("relations") {
        let names = names.as_array().ok_or("\"relations\" must be an array")?;
        return Ok(OpResult::Relations(
            names
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or("relation names must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        ));
    }
    if json.get("num_variables").is_some() {
        return Ok(OpResult::Stats {
            num_variables: usize_field(json, "num_variables", 0)?,
            num_factors: usize_field(json, "num_factors", 0)?,
            num_weights: usize_field(json, "num_weights", 0)?,
            num_catalogued: usize_field(json, "num_catalogued", 0)?,
        });
    }
    if let Some(p) = json.get("probability") {
        return Ok(OpResult::Probability(match p {
            Json::Null => None,
            Json::Number(p) => Some(*p),
            _ => return Err("\"probability\" must be a number or null".to_string()),
        }));
    }
    if let Some(facts) = json.get("facts") {
        let facts = facts.as_array().ok_or("\"facts\" must be an array")?;
        let cross_relation = json.get("cross_relation").and_then(Json::as_bool) == Some(true);
        if cross_relation {
            let mut out = Vec::new();
            for fact in facts {
                let relation = fact
                    .get("relation")
                    .and_then(Json::as_str)
                    .ok_or("cross-relation fact missing \"relation\"")?;
                let tuple = tuple_from_json(fact.get("tuple").ok_or("fact missing \"tuple\"")?)?;
                let p = fact
                    .get("probability")
                    .and_then(Json::as_f64)
                    .ok_or("fact missing numeric \"probability\"")?;
                out.push((relation.to_string(), tuple, p));
            }
            return Ok(OpResult::AllFacts(out));
        }
        let mut out = Vec::new();
        for fact in facts {
            let tuple = tuple_from_json(fact.get("tuple").ok_or("fact missing \"tuple\"")?)?;
            let p = fact
                .get("probability")
                .and_then(Json::as_f64)
                .ok_or("fact missing numeric \"probability\"")?;
            out.push((tuple, p));
        }
        return Ok(OpResult::Facts(out));
    }
    Err("unrecognized result shape".to_string())
}

impl Response {
    /// Encode to the frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let doc = match self {
            Response::Batch(batch) => {
                let mut fields = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("epoch".to_string(), Json::Number(batch.epoch as f64)),
                ];
                if let Some(epochs) = &batch.epochs {
                    fields.push((
                        "epochs".to_string(),
                        Json::Array(
                            epochs
                                .iter()
                                .map(|e| e.map_or(Json::Null, |e| Json::Number(e as f64)))
                                .collect(),
                        ),
                    ));
                }
                fields.push((
                    "results".to_string(),
                    Json::Array(batch.results.iter().map(result_to_json).collect()),
                ));
                Json::Object(fields)
            }
            Response::Error { kind, message } => Json::Object(vec![
                ("ok".to_string(), Json::Bool(false)),
                (
                    "error".to_string(),
                    Json::Object(vec![
                        (
                            "kind".to_string(),
                            Json::String(kind.wire_name().to_string()),
                        ),
                        ("message".to_string(), Json::String(message.clone())),
                    ]),
                ),
            ]),
        };
        doc.encode().into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let doc = json::parse(text)?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                let epoch = doc
                    .get("epoch")
                    .and_then(Json::as_f64)
                    .filter(|e| e.fract() == 0.0 && *e >= 0.0)
                    .ok_or("missing integral \"epoch\"")? as u64;
                let epochs = match doc.get("epochs") {
                    None | Some(Json::Null) => None,
                    Some(Json::Array(entries)) => Some(
                        entries
                            .iter()
                            .map(|e| match e {
                                Json::Null => Ok(None),
                                Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 => {
                                    Ok(Some(*n as u64))
                                }
                                _ => Err("\"epochs\" entries must be integers or null"),
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    Some(_) => return Err("\"epochs\" must be an array".to_string()),
                };
                let results = doc
                    .get("results")
                    .and_then(Json::as_array)
                    .ok_or("missing \"results\" array")?
                    .iter()
                    .map(result_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Batch(Batch {
                    epoch,
                    results,
                    epochs,
                }))
            }
            Some(false) => {
                let error = doc.get("error").ok_or("missing \"error\" object")?;
                let kind = error
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::from_wire_name)
                    .ok_or("missing or unknown error \"kind\"")?;
                let message = string_field(error, "message").unwrap_or_default();
                Ok(Response::Error { kind, message })
            }
            None => Err("response must carry a boolean \"ok\"".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::tuple;

    #[test]
    fn values_round_trip_with_types_intact() {
        let originals = vec![
            Value::Int(42),
            Value::Int(-7),
            Value::text("hello \"world\" 🚀"),
            Value::Bool(true),
            Value::Float(0.25),
            Value::Float(2.0), // must NOT collapse into Int(2)
            Value::Null,
        ];
        for value in &originals {
            let json = value_to_json(value);
            let back = value_from_json(&json::parse(&json.encode()).unwrap()).unwrap();
            assert_eq!(&back, value, "round-trip of {value:?}");
        }
    }

    #[test]
    fn requests_round_trip() {
        let request = Request::new(vec![
            Op::Epoch,
            Op::Relations,
            Op::Stats,
            Op::probability_of("Fact", tuple![1i64, "a"]),
            Op::query(
                "Fact",
                FactQuerySpec {
                    min_probability: 0.5,
                    top_k: Some(10),
                    offset: 2,
                    limit: Some(3),
                },
            ),
            Op::AllFacts {
                min_probability: 0.9,
                offset: 0,
                limit: 100,
            },
            Op::Sleep { millis: 5 },
        ]);
        let decoded = Request::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
    }

    #[test]
    fn epoch_pin_round_trips_and_rejects_junk() {
        let pinned = Request {
            ops: vec![Op::Epoch],
            at_epoch: Some(41),
        };
        assert_eq!(Request::decode(&pinned.encode()).unwrap(), pinned);
        // Absent pin decodes to None.
        assert_eq!(Request::decode(br#"{"ops": []}"#).unwrap().at_epoch, None);
        let err = Request::decode(br#"{"ops": [], "at_epoch": -3}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn request_defaults_fill_in_for_sparse_queries() {
        let decoded =
            Request::decode(br#"{"ops": [{"op": "query", "relation": "Fact"}]}"#).unwrap();
        assert_eq!(decoded.ops[0], Op::query("Fact", FactQuerySpec::default()));
    }

    #[test]
    fn malformed_requests_are_rejected_with_typed_kinds() {
        let kind = |payload: &[u8]| Request::decode(payload).unwrap_err().kind;
        // Byte/JSON-level breakage is a malformed frame...
        assert_eq!(kind(b"not json"), ErrorKind::MalformedFrame);
        assert_eq!(kind(&[0xff, 0xfe]), ErrorKind::MalformedFrame); // not UTF-8
                                                                    // ...while well-formed JSON that is not a valid request is a bad
                                                                    // request — even when its content echoes parser wording.
        assert_eq!(kind(b"{}"), ErrorKind::BadRequest); // no ops
        assert_eq!(kind(b"[1]"), ErrorKind::BadRequest); // not an object
        assert_eq!(kind(br#"{"ops": [{"op": "warp"}]}"#), ErrorKind::BadRequest);
        assert_eq!(
            kind(br#"{"ops": [{"op": "invalid JSON"}]}"#),
            ErrorKind::BadRequest
        );
        assert_eq!(
            kind(br#"{"ops": [{"op": "query"}]}"#),
            ErrorKind::BadRequest
        );
        assert_eq!(
            kind(br#"{"ops": [{"op": "query", "relation": "F", "top_k": -1}]}"#),
            ErrorKind::BadRequest
        );
        let too_many = Request::new(vec![Op::Epoch; MAX_OPS_PER_BATCH + 1]);
        let err = Request::decode(&too_many.encode()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("cap"));
    }

    #[test]
    fn responses_round_trip() {
        let response = Response::Batch(Batch {
            epoch: 7,
            epochs: None,
            results: vec![
                OpResult::Empty,
                OpResult::Relations(vec!["Fact".to_string(), "Other".to_string()]),
                OpResult::Stats {
                    num_variables: 10,
                    num_factors: 20,
                    num_weights: 3,
                    num_catalogued: 10,
                },
                OpResult::Probability(Some(0.75)),
                OpResult::Probability(None),
                OpResult::Facts(vec![(tuple![1i64], 1.0), (tuple![2i64, "b"], 0.5)]),
                OpResult::AllFacts(vec![("Fact".to_string(), tuple![1i64], 1.0)]),
                // Empty lists must keep their variant (the cross_relation
                // marker disambiguates where per-fact keys cannot).
                OpResult::Facts(Vec::new()),
                OpResult::AllFacts(Vec::new()),
            ],
        });
        assert_eq!(Response::decode(&response.encode()).unwrap(), response);

        let error = Response::error(ErrorKind::Overloaded, "queue full (capacity 64)");
        assert_eq!(Response::decode(&error.encode()).unwrap(), error);
    }

    #[test]
    fn epoch_vectors_round_trip_including_unconsulted_shards() {
        let response = Response::Batch(Batch {
            epoch: 9,
            epochs: Some(vec![Some(9), None, Some(4), None]),
            results: vec![OpResult::Empty],
        });
        let decoded = Response::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        // A vector-free response stays vector-free (direct servers).
        let plain = Response::Batch(Batch {
            epoch: 1,
            epochs: None,
            results: Vec::new(),
        });
        assert_eq!(Response::decode(&plain.encode()).unwrap(), plain);
        assert!(
            Response::decode(br#"{"ok": true, "epoch": 1, "epochs": 5, "results": []}"#).is_err()
        );
    }

    #[test]
    fn every_error_kind_round_trips_its_wire_name() {
        for kind in [
            ErrorKind::MalformedFrame,
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::Oversized,
            ErrorKind::ShuttingDown,
            ErrorKind::ShardUnavailable,
            ErrorKind::EpochUnavailable,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_wire_name(kind.wire_name()), Some(kind));
        }
        assert_eq!(ErrorKind::from_wire_name("nope"), None);
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(Response::decode(b"{}").is_err());
        assert!(Response::decode(br#"{"ok": true}"#).is_err()); // no epoch
        assert!(Response::decode(br#"{"ok": false}"#).is_err()); // no error
        assert!(Response::decode(br#"{"ok": false, "error": {"kind": "weird"}}"#).is_err());
    }
}

//! The TCP front door: acceptor, bounded request queue, worker pool.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ─▶ connection thread ─▶ bounded queue ─▶ worker: pin one snapshot,
//!            (read frame,          (full ⇒ typed     run the whole batch
//!             decode request)       Overloaded        against that epoch
//!                                   response,    ◀─ respond ──┘
//!                                   never grows)
//! ```
//!
//! The design borrows the `vendor/rayon` pool's idioms — workers spawned
//! once, parked on a condvar, poison-immune locks, named threads — but the
//! dispatch shape is a queue, not an epoch barrier: requests are independent,
//! so workers pull them one at a time instead of all running one job.
//!
//! **Backpressure is explicit and typed.**  The request queue is bounded at
//! [`ServerConfig::queue_capacity`]; when it is full the connection thread
//! immediately answers `overloaded` instead of enqueueing — memory use is
//! bounded by `capacity + workers` in-flight requests no matter how hard
//! clients flood, and clients get a machine-readable retry signal rather
//! than unbounded latency (the same reasoning as the bounded epoch-barrier
//! pool: admission control beats hidden buffering).
//!
//! **Batches are the consistency unit.**  A worker pins `reader.snapshot()`
//! exactly once per batch, so every operation in the batch reads the same
//! epoch even while `run_update` publishes new ones next door.  Consecutive
//! batches on one connection observe monotonically non-decreasing epochs
//! because publishes swap a single pointer.
//!
//! **Robustness over politeness.**  Malformed JSON, bad requests, oversized
//! declarations, and floods all produce typed error *responses*; only framing
//! violations that make the byte stream unrecoverable (a truncated frame, an
//! oversized prefix whose payload we refuse to read) close the connection —
//! after sending the typed error when the stream still permits one.  Nothing
//! a client sends can panic the server: worker panics are caught and turned
//! into `internal` responses, and the worker survives.

use crate::protocol::{Batch, ErrorKind, Op, OpResult, Request, Response};
use dd_wire::frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
use deepdive::{Snapshot, SnapshotReader};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Lock ignoring poisoning (same rationale as the vendored pool: state
/// transitions are panic-safe, so poisoned data is still consistent).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing batches (each pins one snapshot at a time).
    pub workers: usize,
    /// Bound of the request queue; a request arriving while it is full gets
    /// an immediate `overloaded` response.
    pub queue_capacity: usize,
    /// Cap on one frame's payload; larger declarations get `oversized`.
    pub max_frame_bytes: usize,
    /// Connections beyond this are answered `overloaded` and closed.
    pub max_connections: usize,
    /// Enable the `sleep` fault-injection op (tests use it to hold workers
    /// busy deterministically; keep it off for real deployments).
    pub allow_sleep_op: bool,
    /// How often parked connection threads wake to check for shutdown.
    pub poll_interval: Duration,
    /// Cap on how long one response write may block on a peer that stopped
    /// reading before the connection is dropped.
    pub write_timeout: Duration,
    /// A connection that delivers no byte for this long is closed — the
    /// slowloris bound: idle (or partial-frame-stalled) sockets cannot hold
    /// connection slots forever.  Clients reconnect on demand.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            max_connections: 256,
            allow_sleep_op: false,
            poll_interval: Duration::from_millis(25),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// What a worker runs a decoded batch through.  The default is
/// [`SnapshotBatchHandler`] (pin one snapshot, answer every op from it);
/// the `dd-router` front door substitutes a scatter-gather implementation
/// behind the same acceptor/queue/worker machinery via
/// [`Server::bind_with_handler`].
///
/// Implementations never see transport concerns: framing, decode
/// classification, backpressure, and shutdown refusals are all handled
/// before `execute` is called, and worker panics are caught and turned into
/// typed `internal` errors after it.
pub trait BatchHandler: Send + Sync + 'static {
    /// Execute one decoded batch, returning the response frame's content.
    fn execute(&self, request: &Request) -> Response;
}

/// The default [`BatchHandler`]: pins `reader.snapshot()` once per batch so
/// every op answers from the same epoch, honoring the request's `at_epoch`
/// pin (answering [`ErrorKind::EpochUnavailable`] when the current snapshot
/// is at any other epoch).
pub struct SnapshotBatchHandler {
    reader: SnapshotReader,
    allow_sleep: bool,
}

impl SnapshotBatchHandler {
    /// Wrap a snapshot reader; `allow_sleep` enables the fault-injection
    /// `sleep` op (see [`ServerConfig::allow_sleep_op`]).
    pub fn new(reader: SnapshotReader, allow_sleep: bool) -> Self {
        SnapshotBatchHandler {
            reader,
            allow_sleep,
        }
    }
}

impl BatchHandler for SnapshotBatchHandler {
    fn execute(&self, request: &Request) -> Response {
        // One snapshot pin per batch: every op below reads this epoch.
        let snapshot = self.reader.snapshot();
        if let Some(want) = request.at_epoch {
            if snapshot.epoch() != want {
                return Response::error(
                    ErrorKind::EpochUnavailable,
                    format!(
                        "pinned epoch {want} is not this server's current epoch {}",
                        snapshot.epoch()
                    ),
                );
            }
        }
        execute_batch(&snapshot, request, self.allow_sleep)
    }
}

/// Monotonic counters, readable while the server runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected for the cap).
    pub connections_accepted: u64,
    /// Batches answered from a pinned snapshot.
    pub batches_served: u64,
    /// Requests refused with `overloaded` (queue full or connection cap).
    pub overload_rejections: u64,
    /// Frames refused as malformed / oversized / otherwise undecodable.
    pub malformed_frames: u64,
    /// Total nanoseconds served batches spent waiting in the bounded queue
    /// (enqueue → worker pop).  Divide by `batches_served` for the mean.
    pub queue_wait_nanos_total: u64,
    /// Total nanoseconds workers spent executing batches (pop → response).
    pub service_nanos_total: u64,
    /// The single longest queue wait observed, in nanoseconds.
    pub max_queue_wait_nanos: u64,
}

/// One queued unit of work: a decoded batch plus the channel that hands the
/// response back to its connection thread.
struct QueuedRequest {
    request: Request,
    respond: mpsc::Sender<Response>,
    /// When the request entered the queue; workers subtract this from their
    /// pop time to account queue wait separately from service time.
    enqueued_at: std::time::Instant,
}

/// One live connection in the server's registry: the thread serving it plus
/// a clone of its socket, so shutdown can force-unblock the thread's reads
/// and writes with `Shutdown::Both` before joining it.
struct Connection {
    handle: JoinHandle<()>,
    stream: TcpStream,
}

struct Shared {
    queue: Mutex<VecDeque<QueuedRequest>>,
    work_ready: Condvar,
    stop: AtomicBool,
    config: ServerConfig,
    active_connections: AtomicU64,
    connections_accepted: AtomicU64,
    batches_served: AtomicU64,
    overload_rejections: AtomicU64,
    malformed_frames: AtomicU64,
    queue_wait_nanos: AtomicU64,
    service_nanos: AtomicU64,
    max_queue_wait_nanos: AtomicU64,
}

impl Shared {
    /// Admit a request or refuse it, never blocking and never growing the
    /// queue past its bound.  `Err` returns the request to the caller so the
    /// connection thread can answer `overloaded` itself.
    fn try_enqueue(&self, item: QueuedRequest) -> Result<(), QueuedRequest> {
        {
            let mut queue = lock(&self.queue);
            if self.stop.load(Ordering::Acquire) || queue.len() >= self.config.queue_capacity {
                drop(queue);
                return Err(item);
            }
            queue.push_back(item);
        }
        self.work_ready.notify_one();
        Ok(())
    }

    /// Block until a request is available or shutdown begins (`None`).
    fn pop(&self) -> Option<QueuedRequest> {
        let mut queue = lock(&self.queue);
        loop {
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            if let Some(item) = queue.pop_front() {
                return Some(item);
            }
            queue = self
                .work_ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A running TCP serving layer over one engine's [`SnapshotReader`].
///
/// Bind with [`Server::bind`]; the acceptor, workers, and per-connection
/// threads all run in the background until [`Server::shutdown`] (or drop).
/// See the module docs for the request lifecycle.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<Connection>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `reader`'s snapshots.  Returns as soon as the listener is live.
    pub fn bind(
        addr: impl ToSocketAddrs,
        reader: SnapshotReader,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let handler = Arc::new(SnapshotBatchHandler::new(reader, config.allow_sleep_op));
        Server::bind_with_handler(addr, handler, config)
    }

    /// Bind `addr` and serve batches through a custom [`BatchHandler`]
    /// (acceptor, bounded queue, typed backpressure, and worker-panic
    /// containment all behave exactly as with [`Server::bind`]).
    pub fn bind_with_handler(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn BatchHandler>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            config: config.clone(),
            active_connections: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            batches_served: AtomicU64::new(0),
            overload_rejections: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            service_nanos: AtomicU64::new(0),
            max_queue_wait_nanos: AtomicU64::new(0),
        });

        let workers = (0..config.workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("dd-server-worker-{index}"))
                    .spawn(move || worker_loop(&shared, handler.as_ref()))
                    .expect("spawn server worker")
            })
            .collect();

        let connections = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("dd-server-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &shared, &connections))
                .expect("spawn server acceptor")
        };

        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            connections,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counter values.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.shared.connections_accepted.load(Ordering::Relaxed),
            batches_served: self.shared.batches_served.load(Ordering::Relaxed),
            overload_rejections: self.shared.overload_rejections.load(Ordering::Relaxed),
            malformed_frames: self.shared.malformed_frames.load(Ordering::Relaxed),
            queue_wait_nanos_total: self.shared.queue_wait_nanos.load(Ordering::Relaxed),
            service_nanos_total: self.shared.service_nanos.load(Ordering::Relaxed),
            max_queue_wait_nanos: self.shared.max_queue_wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, refuse queued work, join every thread.  Connections
    /// mid-request receive a `shutting_down` error before their socket
    /// closes.  Also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; it checks the stop flag before serving anything.  A
        // wildcard bind (0.0.0.0/[::]) is not connectable on every platform,
        // so aim the poke at the loopback of the same family.
        let mut poke_addr = self.local_addr;
        if poke_addr.ip().is_unspecified() {
            poke_addr.set_ip(match poke_addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Requests that were queued but never popped: dropping them drops
        // their response senders, which tells the waiting connection threads
        // (blocked in `recv`) that the server is going away.
        lock(&self.shared.queue).clear();
        // Force-unblock any connection thread still parked in a socket read
        // or wedged in a write to a peer that stopped reading, then join.
        for conn in lock(&self.connections).drain(..) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            let _ = conn.handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    connections: &Mutex<Vec<Connection>>,
) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (e.g. EMFILE when the fd limit is
                // hit) return immediately; back off instead of hot-spinning.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let active = shared.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        if active > shared.config.max_connections as u64 {
            // Over the cap: answer with the typed overload signal and close.
            shared.overload_rejections.fetch_add(1, Ordering::Relaxed);
            shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            let mut stream = stream;
            let refusal = Response::error(
                ErrorKind::Overloaded,
                format!(
                    "connection cap of {} reached; retry later",
                    shared.config.max_connections
                ),
            );
            let _ = write_frame(&mut stream, &refusal.encode()).and_then(|_| stream.flush());
            continue;
        }
        let id = next_id;
        next_id += 1;
        // Reap entries of connections that already finished, so the registry
        // tracks concurrent connections, not total-ever-accepted (dropping a
        // finished handle detaches nothing — the thread is gone).
        lock(connections).retain(|conn| !conn.handle.is_finished());
        // The registry keeps a socket clone so shutdown can force-unblock
        // the thread; without one we'd rather refuse than serve unjoinably.
        let Ok(stream_clone) = stream.try_clone() else {
            shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            continue;
        };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("dd-server-conn-{id}"))
            .spawn(move || {
                connection_loop(&stream, &shared);
                // The registry holds a duplicate of this socket, so dropping
                // `stream` alone would leave the peer's connection half-open
                // until server shutdown; `shutdown` closes every duplicate.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
        lock(connections).push(Connection {
            handle,
            stream: stream_clone,
        });
    }
}

/// A `Read` adapter that turns the socket's read timeout into a shutdown
/// and idle-deadline poll: timeouts retry (preserving frame alignment — no
/// byte is lost) until data arrives, the peer closes, the server stops, or
/// the connection has been silent past its idle deadline (the slowloris
/// bound — a peer holding the socket open without sending cannot occupy a
/// connection slot forever).
struct PolledStream<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
    idle_timeout: Duration,
    last_byte: std::time::Instant,
}

impl Read for PolledStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.stop.load(Ordering::Acquire) {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                    if self.last_byte.elapsed() >= self.idle_timeout {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "connection idle past the deadline",
                        ));
                    }
                }
                Ok(n) => {
                    if n > 0 {
                        self.last_byte = std::time::Instant::now();
                    }
                    return Ok(n);
                }
                other => return other,
            }
        }
    }
}

/// Serve one connection until it closes, violates framing, or the server
/// stops.  One request is in flight per connection at a time, so responses
/// are trivially ordered.
fn connection_loop(stream: &TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    // A peer that stops *reading* must not wedge this thread forever in
    // `write_all`; on timeout the write fails and the connection closes
    // (shutdown also force-unblocks via `Shutdown::Both` on the registry).
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = PolledStream {
        stream,
        stop: &shared.stop,
        idle_timeout: shared.config.idle_timeout,
        last_byte: std::time::Instant::now(),
    };
    let mut writer = stream;

    loop {
        let payload = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => return,
            Err(err @ FrameError::Oversized { .. }) => {
                // The declared payload is still in flight and we refuse to
                // read it, so the stream cannot be re-synchronized: send the
                // typed refusal, then close.
                shared.malformed_frames.fetch_add(1, Ordering::Relaxed);
                let refusal = Response::error(ErrorKind::Oversized, err.to_string());
                let _ = write_response(&mut writer, &refusal);
                return;
            }
            // Truncated frame, shutdown poll, or transport error: nothing
            // well-formed to answer.
            Err(_) => return,
        };

        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(err) => {
                // The frame itself was sound, so the stream stays aligned —
                // answer with the typed error and keep serving.  The decode
                // layer already classified the failure into the taxonomy.
                shared.malformed_frames.fetch_add(1, Ordering::Relaxed);
                if write_response(&mut writer, &Response::error(err.kind, err.message)).is_err() {
                    return;
                }
                continue;
            }
        };

        let (respond, result) = mpsc::channel();
        let queued = QueuedRequest {
            request,
            respond,
            enqueued_at: std::time::Instant::now(),
        };
        let response = match shared.try_enqueue(queued) {
            Ok(()) => match result.recv() {
                Ok(response) => response,
                // The worker (or queue) dropped the sender: shutdown.
                Err(_) => Response::error(ErrorKind::ShuttingDown, "server shutting down"),
            },
            Err(_refused) => {
                if shared.stop.load(Ordering::Acquire) {
                    // A shutdown-time refusal is not a backpressure event;
                    // keep it out of the overload counter.
                    Response::error(ErrorKind::ShuttingDown, "server shutting down")
                } else {
                    shared.overload_rejections.fetch_add(1, Ordering::Relaxed);
                    Response::error(
                        ErrorKind::Overloaded,
                        format!(
                            "request queue full (capacity {}); retry after backoff",
                            shared.config.queue_capacity
                        ),
                    )
                }
            }
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if matches!(
            response,
            Response::Error {
                kind: ErrorKind::ShuttingDown,
                ..
            }
        ) {
            return;
        }
    }
}

fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    write_frame(writer, &response.encode())?;
    writer.flush()
}

fn worker_loop(shared: &Shared, handler: &dyn BatchHandler) {
    while let Some(QueuedRequest {
        request,
        respond,
        enqueued_at,
    }) = shared.pop()
    {
        let wait = enqueued_at.elapsed().as_nanos() as u64;
        shared.queue_wait_nanos.fetch_add(wait, Ordering::Relaxed);
        shared
            .max_queue_wait_nanos
            .fetch_max(wait, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let response = catch_unwind(AssertUnwindSafe(|| handler.execute(&request)))
            .unwrap_or_else(|_| Response::error(ErrorKind::Internal, "batch execution panicked"));
        shared
            .service_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if matches!(response, Response::Batch(_)) {
            shared.batches_served.fetch_add(1, Ordering::Relaxed);
        }
        // A vanished connection thread is fine; drop the response.
        let _ = respond.send(response);
    }
}

/// Run every op of a batch against one pinned snapshot.
fn execute_batch(snapshot: &Snapshot, request: &Request, allow_sleep: bool) -> Response {
    let mut results = Vec::with_capacity(request.ops.len());
    for op in &request.ops {
        let result = match op {
            Op::Epoch => OpResult::Empty,
            Op::Relations => OpResult::Relations(
                snapshot
                    .relation_names()
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
            ),
            Op::Stats => OpResult::Stats {
                num_variables: snapshot.stats().num_variables,
                num_factors: snapshot.stats().num_factors,
                num_weights: snapshot.stats().num_weights,
                num_catalogued: snapshot.num_catalogued_variables(),
            },
            Op::ProbabilityOf { relation, tuple } => {
                OpResult::Probability(snapshot.probability_of(relation, tuple))
            }
            Op::Query { relation, spec } => {
                let mut query = snapshot
                    .facts(relation)
                    .min_probability(spec.min_probability)
                    .offset(spec.offset);
                if let Some(k) = spec.top_k {
                    query = query.top_k(k);
                }
                if let Some(l) = spec.limit {
                    query = query.limit(l);
                }
                OpResult::Facts(query.run())
            }
            Op::AllFacts {
                min_probability,
                offset,
                limit,
            } => OpResult::AllFacts(
                snapshot
                    .all_facts(*min_probability, *offset, *limit)
                    .into_iter()
                    .map(|(relation, tuple, p)| (relation.to_string(), tuple, p))
                    .collect(),
            ),
            Op::Sleep { millis } => {
                if !allow_sleep {
                    return Response::error(
                        ErrorKind::BadRequest,
                        "the sleep op is disabled on this server",
                    );
                }
                std::thread::sleep(Duration::from_millis(*millis));
                OpResult::Empty
            }
        };
        results.push(result);
    }
    Response::Batch(Batch {
        epoch: snapshot.epoch(),
        epochs: None,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FactQuerySpec;
    use dd_relstore::tuple;
    use deepdive::{CatalogShards, Snapshot, SnapshotReader};

    fn test_snapshot() -> Snapshot {
        let mut catalog = std::collections::HashMap::new();
        catalog.insert(("Fact".to_string(), tuple![1i64]), 0usize);
        catalog.insert(("Fact".to_string(), tuple![2i64]), 1usize);
        Snapshot::synthetic(3, vec![0.9, 0.2], CatalogShards::build(catalog.iter(), 3))
    }

    #[test]
    fn execute_batch_pins_one_epoch_and_answers_in_order() {
        let snapshot = test_snapshot();
        let request = Request::new(vec![
            Op::Epoch,
            Op::Relations,
            Op::probability_of("Fact", tuple![1i64]),
            Op::probability_of("Fact", tuple![404i64]),
            Op::query(
                "Fact",
                FactQuerySpec {
                    min_probability: 0.5,
                    ..FactQuerySpec::default()
                },
            ),
            Op::AllFacts {
                min_probability: 0.0,
                offset: 0,
                limit: 10,
            },
            Op::Stats,
        ]);
        let Response::Batch(batch) = execute_batch(&snapshot, &request, false) else {
            panic!("expected a batch response");
        };
        assert_eq!(batch.epoch, 3);
        assert_eq!(batch.results.len(), 7);
        assert_eq!(batch.results[0], OpResult::Empty);
        assert_eq!(
            batch.results[1],
            OpResult::Relations(vec!["Fact".to_string()])
        );
        assert_eq!(batch.results[2], OpResult::Probability(Some(0.9)));
        assert_eq!(batch.results[3], OpResult::Probability(None));
        assert_eq!(batch.results[4], OpResult::Facts(vec![(tuple![1i64], 0.9)]));
        assert_eq!(
            batch.results[5],
            OpResult::AllFacts(vec![
                ("Fact".to_string(), tuple![1i64], 0.9),
                ("Fact".to_string(), tuple![2i64], 0.2),
            ])
        );
        assert!(matches!(
            batch.results[6],
            OpResult::Stats {
                num_catalogued: 2,
                ..
            }
        ));
    }

    #[test]
    fn sleep_op_is_rejected_unless_enabled() {
        let snapshot = test_snapshot();
        let request = Request::new(vec![Op::Sleep { millis: 0 }]);
        assert!(matches!(
            execute_batch(&snapshot, &request, false),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            execute_batch(&snapshot, &request, true),
            Response::Batch(_)
        ));
    }

    #[test]
    fn bounded_queue_admits_to_capacity_then_refuses() {
        let shared = Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            config: ServerConfig {
                queue_capacity: 2,
                ..ServerConfig::default()
            },
            active_connections: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            batches_served: AtomicU64::new(0),
            overload_rejections: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            service_nanos: AtomicU64::new(0),
            max_queue_wait_nanos: AtomicU64::new(0),
        };
        let item = || {
            let (respond, _rx) = mpsc::channel();
            QueuedRequest {
                request: Request::new(Vec::new()),
                respond,
                enqueued_at: std::time::Instant::now(),
            }
        };
        assert!(shared.try_enqueue(item()).is_ok());
        assert!(shared.try_enqueue(item()).is_ok());
        assert!(shared.try_enqueue(item()).is_err()); // full: refused, not queued
        assert!(shared.pop().is_some()); // drain one slot...
        assert!(shared.try_enqueue(item()).is_ok()); // ...and admission resumes
        shared.stop.store(true, Ordering::Release);
        assert!(shared.try_enqueue(item()).is_err()); // stopping: refuse
        assert!(shared.pop().is_none()); // stopping: workers exit
    }

    #[test]
    fn snapshot_handler_enforces_the_epoch_pin() {
        let handler = SnapshotBatchHandler::new(SnapshotReader::fixed(test_snapshot()), false);
        // Matching pin (the synthetic snapshot is at epoch 3): served.
        let pinned = Request {
            ops: vec![Op::Epoch],
            at_epoch: Some(3),
        };
        let Response::Batch(batch) = handler.execute(&pinned) else {
            panic!("matching pin must be served");
        };
        assert_eq!(batch.epoch, 3);
        // Any other pin: the typed epoch_unavailable error, not a stale cut.
        let stale = Request {
            ops: vec![Op::Epoch],
            at_epoch: Some(2),
        };
        assert!(matches!(
            handler.execute(&stale),
            Response::Error {
                kind: ErrorKind::EpochUnavailable,
                ..
            }
        ));
        // No pin: served from whatever is current.
        assert!(matches!(
            handler.execute(&Request::new(vec![Op::Epoch])),
            Response::Batch(_)
        ));
    }

    #[test]
    fn timing_counters_account_queue_wait_and_service_time() {
        let config = ServerConfig {
            allow_sleep_op: true,
            ..ServerConfig::default()
        };
        let server = Server::bind(
            "127.0.0.1:0",
            SnapshotReader::fixed(test_snapshot()),
            config,
        )
        .expect("bind loopback server");
        let mut client =
            crate::client::Client::connect(server.local_addr()).expect("connect test client");
        client
            .batch(vec![Op::Sleep { millis: 5 }])
            .expect("sleep batch is served");
        let stats = server.stats();
        assert_eq!(stats.batches_served, 1);
        // The worker slept 5ms inside execute, so service time must show it.
        assert!(
            stats.service_nanos_total >= 5_000_000,
            "service time {} too small",
            stats.service_nanos_total
        );
        // One batch: the max queue wait IS the total queue wait.
        assert_eq!(stats.max_queue_wait_nanos, stats.queue_wait_nanos_total);
        server.shutdown();
    }
}

//! Atomically-rotated checkpoint files.
//!
//! A checkpoint is one record (`dd_wire::record`) in a file named
//! `ckpt-<covered sequence, zero-padded>.ckpt`, where the covered sequence is
//! the last WAL record whose effects are folded into the payload.  Recovery
//! loads the newest *valid* checkpoint and replays WAL records past it.
//!
//! Writes use the classic atomic-replace dance:
//!
//! 1. write the record to `ckpt-….ckpt.tmp`,
//! 2. `fsync` the temp file,
//! 3. `rename` it to its final name,
//! 4. `fsync` the directory.
//!
//! A crash anywhere in that sequence leaves either no new file or a complete
//! one; a leftover `.tmp` is swept on [`CheckpointStore::open`].  The record
//! CRC additionally guards against bit rot: [`CheckpointStore::latest_valid`]
//! walks checkpoints newest-first and skips any that fail validation, so one
//! damaged checkpoint degrades to the previous one instead of to data loss.

use crate::error::StorageError;
use dd_wire::record::{read_record, write_record, RecordError, MAX_PAYLOAD_BYTES};
use std::fs::{self, File};
use std::io::Cursor;
use std::path::{Path, PathBuf};

/// The checkpoint directory: atomic writes, validated reads, pruning.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn checkpoint_name(covered_seq: u64) -> String {
    format!("ckpt-{covered_seq:020}.ckpt")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StorageError::io(format!("fsyncing dir {}", dir.display()), e))
}

impl CheckpointStore {
    /// Open (or create) the store in `dir`, sweeping any `.tmp` debris a
    /// crashed writer left behind.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| {
            StorageError::io(format!("creating checkpoint dir {}", dir.display()), e)
        })?;
        let entries = fs::read_dir(&dir)
            .map_err(|e| StorageError::io(format!("listing {}", dir.display()), e))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| StorageError::io(format!("listing {}", dir.display()), e))?;
            let name = entry.file_name();
            if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
                fs::remove_file(entry.path()).map_err(|e| {
                    StorageError::io(format!("sweeping {}", entry.path().display()), e)
                })?;
            }
        }
        Ok(CheckpointStore { dir })
    }

    /// All checkpoint files, sorted by covered sequence ascending.
    fn list(&self) -> Result<Vec<(u64, PathBuf)>, StorageError> {
        let mut found = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| StorageError::io(format!("listing {}", self.dir.display()), e))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| StorageError::io(format!("listing {}", self.dir.display()), e))?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
                found.push((seq, entry.path()));
            }
        }
        found.sort();
        Ok(found)
    }

    /// Atomically write the checkpoint covering WAL records `..= covered_seq`.
    ///
    /// Payloads the record format cannot represent (longer than the u32
    /// length prefix allows) are refused with a typed error before anything
    /// is written; every checkpoint this method accepts is readable by
    /// [`CheckpointStore::latest_valid`], which caps reads at the file's own
    /// size rather than any fixed constant.
    pub fn write(&mut self, covered_seq: u64, payload: &[u8]) -> Result<PathBuf, StorageError> {
        let final_path = self.dir.join(checkpoint_name(covered_seq));
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(StorageError::Record {
                path: final_path,
                source: RecordError::Oversized {
                    declared: payload.len(),
                    max: MAX_PAYLOAD_BYTES,
                },
            });
        }
        let tmp_path = self
            .dir
            .join(format!("{}.tmp", checkpoint_name(covered_seq)));
        let mut tmp = File::create(&tmp_path)
            .map_err(|e| StorageError::io(format!("creating {}", tmp_path.display()), e))?;
        write_record(&mut tmp, covered_seq, payload)
            .map_err(|e| StorageError::io(format!("writing {}", tmp_path.display()), e))?;
        tmp.sync_all()
            .map_err(|e| StorageError::io(format!("syncing {}", tmp_path.display()), e))?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path).map_err(|e| {
            StorageError::io(format!("renaming {} into place", tmp_path.display()), e)
        })?;
        sync_dir(&self.dir)?;
        Ok(final_path)
    }

    /// Load the newest checkpoint that passes validation, returning its
    /// covered sequence and payload.  Damaged checkpoints (torn, bit-flipped,
    /// or mislabeled) are skipped, newest first.
    pub fn latest_valid(&self) -> Result<Option<(u64, Vec<u8>)>, StorageError> {
        for (seq, path) in self.list()?.into_iter().rev() {
            let bytes = fs::read(&path)
                .map_err(|e| StorageError::io(format!("reading {}", path.display()), e))?;
            let mut cursor = Cursor::new(&bytes);
            // Cap the read at the file's own size: a checkpoint payload
            // JSON-encodes the full database, graph, and sample bundles, and
            // can legitimately dwarf the 16 MiB streaming cap.  A valid
            // record never declares more bytes than the file holding it, so
            // this accepts everything `write` accepted while a corrupt
            // length prefix still fails typed with bounded allocation.
            match read_record(&mut cursor, bytes.len()) {
                // Valid only if the record agrees with its filename and the
                // file holds exactly one record.
                Ok((record_seq, payload))
                    if record_seq == seq && cursor.position() == bytes.len() as u64 =>
                {
                    return Ok(Some((seq, payload)));
                }
                _ => continue,
            }
        }
        Ok(None)
    }

    /// Delete all but the newest `keep` checkpoints (always keeps at least
    /// one).
    pub fn prune(&mut self, keep: usize) -> Result<(), StorageError> {
        let all = self.list()?;
        let keep = keep.max(1);
        if all.len() <= keep {
            return Ok(());
        }
        let cut = all.len() - keep;
        for (_, path) in &all[..cut] {
            fs::remove_file(path)
                .map_err(|e| StorageError::io(format!("pruning {}", path.display()), e))?;
        }
        sync_dir(&self.dir)
    }

    /// Paths of all checkpoint files, sorted by covered sequence (test aid).
    pub fn paths(&self) -> Result<Vec<PathBuf>, StorageError> {
        Ok(self.list()?.into_iter().map(|(_, p)| p).collect())
    }

    /// Covered sequences of all checkpoint files, ascending (unvalidated —
    /// callers use this to size WAL pruning, where counting a damaged file
    /// merely keeps more log around).
    ///
    /// This is what makes [`CheckpointStore::latest_valid`]'s damage fallback
    /// sound end to end: the WAL must be pruned below the *oldest retained*
    /// checkpoint, not the newest, so that falling back to an older
    /// checkpoint still finds every record needed to replay forward.
    pub fn covered_seqs(&self) -> Result<Vec<u64>, StorageError> {
        Ok(self.list()?.into_iter().map(|(seq, _)| seq).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dd-storage-ckpt-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_latest_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(store.latest_valid().unwrap().is_none());
        store.write(5, b"state at five").unwrap();
        store.write(9, b"state at nine").unwrap();
        assert_eq!(
            store.latest_valid().unwrap(),
            Some((9, b"state at nine".to_vec()))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.write(3, b"good old").unwrap();
        let newest = store.write(7, b"doomed new").unwrap();
        // Bit-flip every byte of the newest checkpoint in turn; recovery must
        // always land on the older one.
        let intact = fs::read(&newest).unwrap();
        for byte in 0..intact.len() {
            let mut damaged = intact.clone();
            damaged[byte] ^= 0x10;
            fs::write(&newest, &damaged).unwrap();
            assert_eq!(
                store.latest_valid().unwrap(),
                Some((3, b"good old".to_vec())),
                "flip at byte {byte}"
            );
        }
        // Truncated-to-every-length newest also falls back.
        for cut in 0..intact.len() {
            fs::write(&newest, &intact[..cut]).unwrap();
            assert_eq!(
                store.latest_valid().unwrap(),
                Some((3, b"good old".to_vec())),
                "cut at {cut}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_past_the_streaming_cap_round_trip() {
        // Regression: writes used to succeed for any u32-sized payload while
        // `latest_valid` read with the 16 MiB streaming cap, so a large
        // checkpoint (realistic — it JSON-encodes the full engine state) was
        // written durably but permanently unreadable, turning into
        // "unrecoverable corruption" once the WAL was pruned beneath it.
        let dir = temp_dir("big");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let big = vec![0x5Cu8; dd_wire::MAX_RECORD_BYTES + 1];
        store.write(6, &big).unwrap();
        assert_eq!(store.latest_valid().unwrap(), Some((6, big)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_debris_is_swept_and_never_loaded() {
        let dir = temp_dir("tmp");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.write(2, b"real").unwrap();
        // Simulate a crash mid-write: a half-written temp file.
        fs::write(dir.join("ckpt-00000000000000000009.ckpt.tmp"), b"half").unwrap();
        let store2 = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store2.latest_valid().unwrap(), Some((2, b"real".to_vec())));
        assert_eq!(store2.paths().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = temp_dir("prune");
        let mut store = CheckpointStore::open(&dir).unwrap();
        for seq in [1u64, 4, 8, 12] {
            store.write(seq, format!("s{seq}").as_bytes()).unwrap();
        }
        store.prune(2).unwrap();
        assert_eq!(store.paths().unwrap().len(), 2);
        assert_eq!(store.latest_valid().unwrap(), Some((12, b"s12".to_vec())));
        // keep = 0 is clamped to 1.
        store.prune(0).unwrap();
        assert_eq!(store.paths().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_invalidates_a_checkpoint() {
        let dir = temp_dir("garbage");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let path = store.write(4, b"clean").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk after the record");
        fs::write(&path, &bytes).unwrap();
        assert!(store.latest_valid().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

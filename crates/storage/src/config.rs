//! Durability configuration shared by the WAL and the engine builder.

use std::path::PathBuf;

/// When to issue `fsync` on the write-ahead log.
///
/// Checkpoint files are *always* synced before their atomic rename — the
/// policy only governs the per-append cost on the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every appended record.  Survives power loss at the cost of
    /// one disk flush per update.
    Always,
    /// Sync after every N appended records (and on rotation).  Bounded data
    /// loss window of N−1 records on power failure; still crash-consistent
    /// (the tail truncates to the last *synced* record or later).
    EveryN(u64),
    /// Never sync on append (rotation and checkpointing still sync).  For
    /// tests and throwaway runs only.
    Never,
}

/// How and where the engine persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root data directory; `wal/` and `checkpoints/` are created inside it.
    pub data_dir: PathBuf,
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// How many checkpoint files to keep after a successful checkpoint
    /// (at least 1; the newest is never pruned).
    pub keep_checkpoints: usize,
    /// Automatically checkpoint after this many WAL records have been
    /// appended since the last checkpoint (`None` — the default — keeps
    /// checkpoints manual-only).  The trigger fires right after the
    /// state-changing call that crossed the threshold completes, so the WAL
    /// replay window on recovery stays bounded without anyone calling
    /// `checkpoint()` by hand.
    pub checkpoint_every_records: Option<u64>,
    /// Like `checkpoint_every_records`, but counting encoded WAL bytes —
    /// the natural bound when updates vary wildly in size.  Both thresholds
    /// may be set; whichever trips first triggers the checkpoint (and both
    /// counters reset).
    pub checkpoint_every_bytes: Option<u64>,
}

impl DurabilityConfig {
    /// Durable defaults: fsync on every append, keep the two newest
    /// checkpoints.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            keep_checkpoints: 2,
            checkpoint_every_records: None,
            checkpoint_every_bytes: None,
        }
    }

    /// Set the WAL fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set how many checkpoints to retain (clamped to at least 1).
    pub fn keep_checkpoints(mut self, keep: usize) -> Self {
        self.keep_checkpoints = keep.max(1);
        self
    }

    /// Auto-checkpoint once this many WAL records accumulate since the last
    /// checkpoint (clamped to at least 1; `None` disables the trigger).
    pub fn checkpoint_every_records(mut self, records: impl Into<Option<u64>>) -> Self {
        self.checkpoint_every_records = records.into().map(|n| n.max(1));
        self
    }

    /// Auto-checkpoint once this many encoded WAL bytes accumulate since
    /// the last checkpoint (clamped to at least 1; `None` disables).
    pub fn checkpoint_every_bytes(mut self, bytes: impl Into<Option<u64>>) -> Self {
        self.checkpoint_every_bytes = bytes.into().map(|n| n.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = DurabilityConfig::new("/tmp/dd");
        assert_eq!(cfg.fsync, FsyncPolicy::Always);
        assert_eq!(cfg.keep_checkpoints, 2);
        assert_eq!(cfg.checkpoint_every_records, None);
        assert_eq!(cfg.checkpoint_every_bytes, None);
        let cfg = cfg.fsync(FsyncPolicy::EveryN(8)).keep_checkpoints(0);
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(8));
        assert_eq!(cfg.keep_checkpoints, 1);
    }

    #[test]
    fn checkpoint_policy_builders_clamp_and_disable() {
        let cfg = DurabilityConfig::new("/tmp/dd")
            .checkpoint_every_records(16)
            .checkpoint_every_bytes(1 << 20);
        assert_eq!(cfg.checkpoint_every_records, Some(16));
        assert_eq!(cfg.checkpoint_every_bytes, Some(1 << 20));
        // Zero thresholds clamp to 1 (checkpoint after every record/byte)
        // rather than silently meaning "never".
        let cfg = cfg.checkpoint_every_records(0).checkpoint_every_bytes(0);
        assert_eq!(cfg.checkpoint_every_records, Some(1));
        assert_eq!(cfg.checkpoint_every_bytes, Some(1));
        // And None turns the trigger back off.
        let cfg = cfg
            .checkpoint_every_records(None)
            .checkpoint_every_bytes(None);
        assert_eq!(cfg.checkpoint_every_records, None);
        assert_eq!(cfg.checkpoint_every_bytes, None);
    }
}

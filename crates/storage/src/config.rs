//! Durability configuration shared by the WAL and the engine builder.

use std::path::PathBuf;

/// When to issue `fsync` on the write-ahead log.
///
/// Checkpoint files are *always* synced before their atomic rename — the
/// policy only governs the per-append cost on the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every appended record.  Survives power loss at the cost of
    /// one disk flush per update.
    Always,
    /// Sync after every N appended records (and on rotation).  Bounded data
    /// loss window of N−1 records on power failure; still crash-consistent
    /// (the tail truncates to the last *synced* record or later).
    EveryN(u64),
    /// Never sync on append (rotation and checkpointing still sync).  For
    /// tests and throwaway runs only.
    Never,
}

/// How and where the engine persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root data directory; `wal/` and `checkpoints/` are created inside it.
    pub data_dir: PathBuf,
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// How many checkpoint files to keep after a successful checkpoint
    /// (at least 1; the newest is never pruned).
    pub keep_checkpoints: usize,
}

impl DurabilityConfig {
    /// Durable defaults: fsync on every append, keep the two newest
    /// checkpoints.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            keep_checkpoints: 2,
        }
    }

    /// Set the WAL fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set how many checkpoints to retain (clamped to at least 1).
    pub fn keep_checkpoints(mut self, keep: usize) -> Self {
        self.keep_checkpoints = keep.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = DurabilityConfig::new("/tmp/dd");
        assert_eq!(cfg.fsync, FsyncPolicy::Always);
        assert_eq!(cfg.keep_checkpoints, 2);
        let cfg = cfg.fsync(FsyncPolicy::EveryN(8)).keep_checkpoints(0);
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(8));
        assert_eq!(cfg.keep_checkpoints, 1);
    }
}

//! The one error type every storage operation returns.

use dd_wire::RecordError;
use std::io;
use std::path::PathBuf;

/// Why a storage operation failed.
///
/// Torn and bit-flipped WAL *tails* are not errors — [`crate::Wal::open`]
/// truncates them and reports what it kept.  `StorageError` is for conditions
/// the caller must handle: the environment failing (I/O), payloads that
/// cannot be encoded/decoded, or structural damage that truncation cannot
/// repair (for example a segment whose first record contradicts its
/// filename).
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure, with what we were doing at the time.
    Io { context: String, source: io::Error },
    /// A record-level failure in a place where damage is not recoverable by
    /// tail truncation (e.g. while *writing*).
    Record { path: PathBuf, source: RecordError },
    /// Engine state could not be encoded to or decoded from a payload.
    Codec { context: String, detail: String },
    /// Structural damage truncation cannot repair.
    Corrupt { path: PathBuf, detail: String },
    /// A durability operation was requested on an engine built without
    /// [`crate::DurabilityConfig`].
    NotConfigured,
}

impl StorageError {
    /// Convenience constructor for the I/O case.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for the codec case.
    pub fn codec(context: impl Into<String>, detail: impl Into<String>) -> Self {
        StorageError::Codec {
            context: context.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { context, source } => {
                write!(f, "storage I/O failure while {context}: {source}")
            }
            StorageError::Record { path, source } => {
                write!(f, "record failure in {}: {source}", path.display())
            }
            StorageError::Codec { context, detail } => {
                write!(f, "storage codec failure while {context}: {detail}")
            }
            StorageError::Corrupt { path, detail } => {
                write!(
                    f,
                    "unrecoverable corruption in {}: {detail}",
                    path.display()
                )
            }
            StorageError::NotConfigured => write!(
                f,
                "durability is not configured; build the engine with .durability(DurabilityConfig)"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Record { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chains() {
        let err = StorageError::io(
            "appending",
            io::Error::new(io::ErrorKind::Other, "disk gone"),
        );
        assert!(err.to_string().contains("appending"));
        assert!(err.to_string().contains("disk gone"));
        assert!(std::error::Error::source(&err).is_some());

        let err = StorageError::Record {
            path: PathBuf::from("/tmp/wal-1.log"),
            source: RecordError::Corrupt {
                stored: 1,
                computed: 2,
            },
        };
        assert!(err.to_string().contains("wal-1.log"));
        assert!(std::error::Error::source(&err).is_some());

        let err = StorageError::codec("encoding snapshot", "non-finite weight");
        assert!(err.to_string().contains("non-finite weight"));
        assert!(std::error::Error::source(&err).is_none());

        assert!(StorageError::NotConfigured
            .to_string()
            .contains("durability"));
        let err = StorageError::Corrupt {
            path: PathBuf::from("x"),
            detail: "bad".into(),
        };
        assert!(err.to_string().contains("unrecoverable"));
    }
}

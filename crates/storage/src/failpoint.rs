//! Deterministic write-path fault injection.
//!
//! [`FailpointWriter`] wraps any byte sink and dies after an exact byte
//! budget, capturing the prefix it let through.  Crash tests use it to
//! produce a torn write of *every* possible length — the same family of
//! states a `kill -9` (or power cut) can leave on disk — without the
//! nondeterminism of actually racing a signal:
//!
//! ```
//! use dd_storage::FailpointWriter;
//! use dd_wire::record::{encode_record, write_record};
//!
//! let full = encode_record(1, b"payload");
//! for budget in 0..full.len() {
//!     let mut w = FailpointWriter::new(budget);
//!     assert!(write_record(&mut w, 1, b"payload").is_err());
//!     assert_eq!(w.written(), &full[..budget]);
//! }
//! ```
//!
//! It lives in the library (not behind `#[cfg(test)]`) so integration tests
//! and other crates' crash harnesses can drive it too.

use std::io::{self, Write};

/// A `Write` impl that accepts exactly `budget` bytes, then fails forever.
#[derive(Debug)]
pub struct FailpointWriter {
    budget: usize,
    written: Vec<u8>,
    tripped: bool,
}

impl FailpointWriter {
    /// A writer that will accept `budget` bytes before dying.
    pub fn new(budget: usize) -> Self {
        FailpointWriter {
            budget,
            written: Vec::new(),
            tripped: false,
        }
    }

    /// The bytes that made it through before the failpoint tripped — the
    /// "what's on disk after the crash" prefix.
    pub fn written(&self) -> &[u8] {
        &self.written
    }

    /// True once the failpoint has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Consume the writer and take the surviving prefix.
    pub fn into_written(self) -> Vec<u8> {
        self.written
    }
}

impl Write for FailpointWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let remaining = self.budget - self.written.len();
        if buf.len() <= remaining {
            self.written.extend_from_slice(buf);
            return Ok(buf.len());
        }
        // Let the allowed prefix through, then die: this models the kernel
        // persisting part of a write before the process was killed.
        self.written.extend_from_slice(&buf[..remaining]);
        self.tripped = true;
        Err(io::Error::new(
            io::ErrorKind::Other,
            format!("failpoint tripped after {} bytes", self.budget),
        ))
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(io::Error::new(io::ErrorKind::Other, "failpoint tripped"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_wire::record::encode_record;

    #[test]
    fn cuts_at_exactly_the_budget() {
        let record = encode_record(3, b"abcdef");
        for budget in 0..=record.len() {
            let mut w = FailpointWriter::new(budget);
            let result = w.write_all(&record);
            if budget >= record.len() {
                assert!(result.is_ok());
                assert!(!w.tripped());
            } else {
                assert!(result.is_err());
                assert!(w.tripped());
            }
            assert_eq!(w.written(), &record[..budget.min(record.len())]);
        }
    }

    #[test]
    fn stays_dead_after_tripping() {
        let mut w = FailpointWriter::new(2);
        assert!(w.write_all(b"abc").is_err());
        assert!(w.write_all(b"more").is_err());
        assert!(w.flush().is_err());
        assert_eq!(w.into_written(), b"ab");
    }
}

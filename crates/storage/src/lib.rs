//! Durable persistence for the engine: a write-ahead log plus checkpoints.
//!
//! The paper's serving story (PRs 3–5) keeps everything in memory; this crate
//! is the missing durability layer, following the write-path discipline of
//! append-only sequential logs with explicit fsync barriers:
//!
//! * [`wal`] — an append-only log of opaque payloads (the engine logs one
//!   canonical-JSON operation per record) split into sequential segment
//!   files.  Each record carries a CRC-32 and a monotone sequence number
//!   (`dd_wire::record`); on open, a torn or bit-flipped tail is detected
//!   and *physically truncated* at the last valid record — never a panic,
//!   never silently-accepted corruption.
//! * [`checkpoint`] — compact point-in-time state files, written with the
//!   classic atomic-rename dance (write temp → fsync file → rename →
//!   fsync dir) so a crash leaves either the old checkpoint set or the new
//!   one, nothing in between.  Recovery is "load the newest valid
//!   checkpoint, replay the WAL tail past it".
//! * [`failpoint`] — an always-compiled fault-injection writer that kills
//!   the write path at an exact byte budget, so crash tests can produce a
//!   torn prefix of *every* length without racing a real `kill -9`.
//!
//! This crate is deliberately bytes-only: it knows nothing about snapshots,
//! factor graphs, or engines.  `deepdive` owns the codecs that turn engine
//! state into payloads; `dd-storage` owns getting those payloads onto disk
//! and back without lying.

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod failpoint;
pub mod wal;

pub use checkpoint::CheckpointStore;
pub use config::{DurabilityConfig, FsyncPolicy};
pub use error::StorageError;
pub use failpoint::FailpointWriter;
pub use wal::Wal;

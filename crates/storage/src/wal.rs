//! The append-only write-ahead log.
//!
//! Layout: a `wal/` directory holding sequential segment files named
//! `wal-<start sequence, zero-padded>.log`.  Every record inside a segment is
//! a `dd_wire::record` (length + CRC-32 + sequence + payload); sequences are
//! contiguous across segments, so the segment name states exactly which
//! record the file starts with.
//!
//! ## Crash behaviour
//!
//! Appends are single `write(2)` calls of a fully-encoded record, so a crash
//! leaves at most one torn record at the end of the newest segment.  On
//! [`Wal::open`], the log is scanned from the first segment forward and is
//! *physically repaired*:
//!
//! * a record that fails its checksum, truncates mid-record, declares a
//!   length past the end of its segment, or carries the wrong sequence
//!   number marks the torn tail — the segment is `set_len`-truncated back to
//!   the last valid record, and any later segments (unreachable past the
//!   tear) are deleted.  The scan's size cap is the segment's own length
//!   (not a fixed constant), so any payload [`Wal::append`] accepted is
//!   readable and is never misdiagnosed as damage;
//! * everything before the tear is returned to the caller for replay.
//!
//! Opening is therefore idempotent: a second open of the same directory
//! performs no writes and returns byte-identical records.
//!
//! ## Fsync discipline
//!
//! [`FsyncPolicy`] governs per-append syncs.  Rotation always syncs the old
//! segment, creates the new one, and fsyncs the directory so the new name is
//! durable — the barrier that makes "checkpoint then prune" safe.

use crate::config::FsyncPolicy;
use crate::error::StorageError;
use dd_wire::record::{encode_record, read_record, RecordError, MAX_PAYLOAD_BYTES};
use std::fs::{self, File, OpenOptions};
use std::io::{Cursor, Write};
use std::path::{Path, PathBuf};

/// The append-only, checksummed, crash-repairing log.
pub struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    file: File,
    current_path: PathBuf,
    next_seq: u64,
    unsynced: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("current", &self.current_path)
            .finish()
    }
}

/// Name of the segment whose first record carries `start_seq`.
fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

/// Parse a segment filename back to its starting sequence.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// All segment files in `dir`, sorted by starting sequence.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    let mut segments = Vec::new();
    let entries = fs::read_dir(dir)
        .map_err(|e| StorageError::io(format!("listing WAL dir {}", dir.display()), e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| StorageError::io(format!("listing WAL dir {}", dir.display()), e))?;
        if let Some(start) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((start, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Fsync a directory so renames/creates/unlinks inside it are durable.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StorageError::io(format!("fsyncing dir {}", dir.display()), e))
}

impl Wal {
    /// Open (or create) the log in `dir`, repair any torn tail, and return
    /// the WAL positioned for appending plus every valid `(seq, payload)`
    /// record currently in the log.
    pub fn open(
        dir: impl Into<PathBuf>,
        fsync: FsyncPolicy,
    ) -> Result<(Wal, Vec<(u64, Vec<u8>)>), StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("creating WAL dir {}", dir.display()), e))?;
        let segments = list_segments(&dir)?;

        if segments.is_empty() {
            let (file, path) = Wal::create_segment(&dir, 1)?;
            return Ok((
                Wal {
                    dir,
                    fsync,
                    file,
                    current_path: path,
                    next_seq: 1,
                    unsynced: 0,
                },
                Vec::new(),
            ));
        }

        let mut records = Vec::new();
        let mut expected = segments[0].0;
        // Index of the last segment that survives the scan.
        let mut keep_through = 0usize;

        'segments: for (idx, (start, path)) in segments.iter().enumerate() {
            if *start != expected {
                // A gap: this segment starts past (or before) the record we
                // need next, so everything from here on is unreachable.
                // Possible after a tear truncated the previous segment.
                for (_, stale) in &segments[idx..] {
                    fs::remove_file(stale).map_err(|e| {
                        StorageError::io(format!("removing stale segment {}", stale.display()), e)
                    })?;
                }
                sync_dir(&dir)?;
                break 'segments;
            }
            keep_through = idx;
            let bytes = fs::read(path)
                .map_err(|e| StorageError::io(format!("reading segment {}", path.display()), e))?;
            let mut cursor = Cursor::new(&bytes);
            let mut valid_end = 0u64;
            loop {
                // Cap reads at the segment's own size: a valid record can
                // never declare more bytes than the file that holds it, so
                // every payload `append` accepted reads back, while a torn
                // length prefix still fails typed (Oversized past the file,
                // Truncated/Corrupt within it) and allocation stays bounded.
                match read_record(&mut cursor, bytes.len()) {
                    Ok((seq, payload)) if seq == expected => {
                        expected += 1;
                        valid_end = cursor.position();
                        records.push((seq, payload));
                    }
                    // Wrong sequence number: a tear that left stale bytes
                    // behind, or cross-segment inconsistency.  Same repair.
                    Ok(_) => {
                        Wal::repair_tail(&dir, &segments, idx, path, valid_end)?;
                        break 'segments;
                    }
                    Err(RecordError::Closed) => break,
                    Err(err) if err.is_tail_damage() => {
                        Wal::repair_tail(&dir, &segments, idx, path, valid_end)?;
                        break 'segments;
                    }
                    Err(RecordError::Io(e)) => {
                        return Err(StorageError::io(
                            format!("scanning segment {}", path.display()),
                            e,
                        ));
                    }
                    Err(other) => {
                        return Err(StorageError::Record {
                            path: path.clone(),
                            source: other,
                        });
                    }
                }
            }
        }

        let current_path = segments[keep_through].1.clone();
        let file = OpenOptions::new()
            .append(true)
            .open(&current_path)
            .map_err(|e| {
                StorageError::io(format!("opening segment {}", current_path.display()), e)
            })?;
        Ok((
            Wal {
                dir,
                fsync,
                file,
                current_path,
                next_seq: expected,
                unsynced: 0,
            },
            records,
        ))
    }

    /// Truncate `path` back to `valid_end` and delete every later segment.
    fn repair_tail(
        dir: &Path,
        segments: &[(u64, PathBuf)],
        idx: usize,
        path: &Path,
        valid_end: u64,
    ) -> Result<(), StorageError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("opening {} for repair", path.display()), e))?;
        file.set_len(valid_end)
            .map_err(|e| StorageError::io(format!("truncating {}", path.display()), e))?;
        file.sync_all()
            .map_err(|e| StorageError::io(format!("syncing {}", path.display()), e))?;
        for (_, stale) in &segments[idx + 1..] {
            fs::remove_file(stale).map_err(|e| {
                StorageError::io(format!("removing stale segment {}", stale.display()), e)
            })?;
        }
        sync_dir(dir)
    }

    fn create_segment(dir: &Path, start_seq: u64) -> Result<(File, PathBuf), StorageError> {
        let path = dir.join(segment_name(start_seq));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("creating segment {}", path.display()), e))?;
        file.sync_all()
            .map_err(|e| StorageError::io(format!("syncing new segment {}", path.display()), e))?;
        sync_dir(dir)?;
        Ok((file, path))
    }

    /// Append one payload as the next record; returns its sequence number.
    ///
    /// The record is written with a single `write` call so a crash tears at
    /// most the final record, then synced according to the [`FsyncPolicy`].
    ///
    /// Payloads the record format cannot represent (longer than the u32
    /// length prefix allows) are refused with a typed error *before* any
    /// bytes hit the file — everything this method accepts is guaranteed to
    /// read back on recovery.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(StorageError::Record {
                path: self.current_path.clone(),
                source: RecordError::Oversized {
                    declared: payload.len(),
                    max: MAX_PAYLOAD_BYTES,
                },
            });
        }
        let seq = self.next_seq;
        let encoded = encode_record(seq, payload);
        self.file
            .write_all(&encoded)
            .map_err(|e| StorageError::io(format!("appending record {seq}"), e))?;
        self.next_seq += 1;
        self.unsynced += 1;
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Flush appended records to stable storage now.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("syncing WAL segment", e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Seal the current segment and start a new one at the next sequence.
    ///
    /// Syncs the sealed segment and the directory before returning, so the
    /// rotation itself is durable.
    pub fn rotate(&mut self) -> Result<(), StorageError> {
        self.sync()?;
        let (file, path) = Wal::create_segment(&self.dir, self.next_seq)?;
        self.file = file;
        self.current_path = path;
        Ok(())
    }

    /// Delete sealed segments whose records are *all* below `seq` (i.e. are
    /// covered by a checkpoint).  The segment currently open for append is
    /// never deleted.
    pub fn prune_below(&mut self, seq: u64) -> Result<(), StorageError> {
        let segments = list_segments(&self.dir)?;
        let mut removed = false;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_start, _) = window[1];
            if next_start <= seq && *path != self.current_path {
                fs::remove_file(path).map_err(|e| {
                    StorageError::io(format!("pruning segment {}", path.display()), e)
                })?;
                removed = true;
            }
        }
        if removed {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Sequence number of the last appended record (0 if nothing was ever
    /// appended to a fresh log).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Paths of all segment files, sorted by starting sequence (test/tooling
    /// aid).
    pub fn segment_paths(&self) -> Result<Vec<PathBuf>, StorageError> {
        Ok(list_segments(&self.dir)?
            .into_iter()
            .map(|(_, p)| p)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dd-storage-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payloads(records: &[(u64, Vec<u8>)]) -> Vec<&[u8]> {
        records.iter().map(|(_, p)| p.as_slice()).collect()
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        let (mut wal, recovered) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(wal.last_seq(), 0);
        assert_eq!(wal.append(b"one").unwrap(), 1);
        assert_eq!(wal.append(b"two").unwrap(), 2);
        drop(wal);
        let (wal, recovered) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        assert_eq!(wal.next_seq(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_at_every_byte_boundary_recovers_cleanly() {
        // A reference log of three records; then for every possible torn
        // prefix of the fourth, recovery keeps exactly the first three and
        // truncates the file back to their bytes.
        let dir = temp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        for p in [&b"alpha"[..], b"beta", b"gamma"] {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        let path = wal.segment_paths().unwrap().pop().unwrap();
        drop(wal);
        let intact = fs::read(&path).unwrap();
        let torn_record = encode_record(4, b"delta gets torn");

        for cut in 0..torn_record.len() {
            let mut bytes = intact.clone();
            bytes.extend_from_slice(&torn_record[..cut]);
            fs::write(&path, &bytes).unwrap();
            let (wal, recovered) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(
                payloads(&recovered),
                vec![&b"alpha"[..], b"beta", b"gamma"],
                "cut at {cut}"
            );
            assert_eq!(wal.next_seq(), 4, "cut at {cut}");
            drop(wal);
            // The tail was physically removed.
            assert_eq!(fs::read(&path).unwrap(), intact, "cut at {cut}");
            // And a second open is a no-op returning identical records.
            let (_, again) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(again, recovered, "cut at {cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_in_the_tail_truncate_to_last_valid_record() {
        let dir = temp_dir("flip");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        wal.append(b"keep me").unwrap();
        let keep_len = fs::metadata(wal.segment_paths().unwrap().pop().unwrap())
            .unwrap()
            .len();
        wal.append(b"flip me").unwrap();
        wal.sync().unwrap();
        let path = wal.segment_paths().unwrap().pop().unwrap();
        drop(wal);
        let intact = fs::read(&path).unwrap();
        for byte in keep_len as usize..intact.len() {
            for bit in 0..8 {
                let mut damaged = intact.clone();
                damaged[byte] ^= 1 << bit;
                fs::write(&path, &damaged).unwrap();
                let (wal, recovered) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
                assert_eq!(payloads(&recovered), vec![&b"keep me"[..]]);
                assert_eq!(wal.next_seq(), 2);
                drop(wal);
                assert_eq!(fs::metadata(&path).unwrap().len(), keep_len);
                // Restore the intact bytes for the next iteration.
                fs::write(&path, &intact).unwrap();
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_pruning_keeps_the_tail() {
        let dir = temp_dir("rotate");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.rotate().unwrap();
        wal.append(b"c").unwrap();
        assert_eq!(wal.segment_paths().unwrap().len(), 2);
        drop(wal);

        let (mut wal, recovered) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(payloads(&recovered), vec![&b"a"[..], b"b", b"c"]);

        // After a checkpoint covering record 2, records < 3 are disposable:
        // the first segment (records 1–2) goes.
        wal.prune_below(3).unwrap();
        assert_eq!(wal.segment_paths().unwrap().len(), 1);
        drop(wal);
        let (wal, recovered) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered, vec![(3, b"c".to_vec())]);
        assert_eq!(wal.next_seq(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tear_in_earlier_segment_drops_later_segments() {
        let dir = temp_dir("cascade");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        wal.append(b"a").unwrap();
        wal.rotate().unwrap();
        wal.append(b"b").unwrap();
        wal.sync().unwrap();
        let first = wal.segment_paths().unwrap()[0].clone();
        drop(wal);
        // Corrupt the sealed first segment: its tail (record 1) dies, and the
        // second segment (record 2) becomes unreachable.
        let mut bytes = fs::read(&first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&first, &bytes).unwrap();
        let (wal, recovered) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(wal.next_seq(), 1);
        assert_eq!(wal.segment_paths().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payloads_past_the_streaming_cap_round_trip() {
        // Regression: appends used to succeed for any u32-sized payload while
        // recovery read with the 16 MiB streaming cap, so a large committed
        // record (e.g. a bulk-update WAL op) was misread as a torn tail and
        // silently truncated away along with everything after it.
        let dir = temp_dir("bigrec");
        let big = vec![0xA7u8; dd_wire::MAX_RECORD_BYTES + 1];
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(wal.append(&big).unwrap(), 1);
        assert_eq!(wal.append(b"after the big one").unwrap(), 2);
        wal.sync().unwrap();
        drop(wal);
        let (wal, recovered) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0], (1, big));
        assert_eq!(recovered[1], (2, b"after the big one".to_vec()));
        assert_eq!(wal.next_seq(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_policy_counts_appends() {
        let dir = temp_dir("everyn");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..7u8 {
            wal.append(&[i]).unwrap();
        }
        // No assertion beyond "it works and recovers" — the sync counter is
        // not observable without OS hooks, but the path must be exercised.
        drop(wal);
        let (_, recovered) = Wal::open(&dir, FsyncPolicy::EveryN(3)).unwrap();
        assert_eq!(recovered.len(), 7);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Length-prefixed message framing over any byte stream.
//!
//! One frame is a 4-byte big-endian payload length followed by that many
//! payload bytes.  The format carries arbitrary bytes; `dd-server` puts one
//! JSON document per frame.  Two properties matter for a network front door:
//!
//! * **Bounded allocation** — [`read_frame`] takes an explicit payload cap
//!   and refuses to allocate for a frame that declares more, so a hostile or
//!   corrupt length prefix costs four bytes of reading, not gigabytes of
//!   memory.  [`FrameError::Oversized`] reports what was declared.
//! * **Distinguishable failure modes** — a peer closing cleanly *between*
//!   frames ([`FrameError::Closed`]) is the normal end of a connection; a
//!   stream ending *inside* a frame ([`FrameError::Truncated`]) is a protocol
//!   violation.  Servers treat the former as goodbye and the latter as an
//!   error worth logging.
//!
//! ```
//! use dd_wire::frame::{read_frame, write_frame, FrameError};
//! use std::io::Cursor;
//!
//! let mut buf = Vec::new();
//! write_frame(&mut buf, b"hello").unwrap();
//! let mut stream = Cursor::new(buf);
//! assert_eq!(read_frame(&mut stream, 1024).unwrap(), b"hello");
//! assert!(matches!(read_frame(&mut stream, 1024), Err(FrameError::Closed)));
//! ```

use std::io::{self, ErrorKind, Read, Write};

/// Default cap on a single frame's payload (16 MiB) — far above any batch the
/// protocol produces, far below what would let a bad length prefix hurt.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly on a frame boundary (normal connection close).
    Closed,
    /// The stream ended mid-prefix or mid-payload: the peer violated the
    /// framing protocol or died.  Carries how many bytes were still expected.
    Truncated { missing: usize },
    /// The prefix declared a payload larger than the reader's cap.
    Oversized { declared: usize, max: usize },
    /// An I/O error other than end-of-stream.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { missing } => {
                write!(f, "stream truncated mid-frame ({missing} bytes missing)")
            }
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes, cap is {max}")
            }
            FrameError::Io(err) => write!(f, "frame I/O error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        FrameError::Io(err)
    }
}

impl FrameError {
    /// True for the clean end-of-connection case.
    pub fn is_closed(&self) -> bool {
        matches!(self, FrameError::Closed)
    }
}

/// Write one frame: 4-byte big-endian length, then the payload.
///
/// Refuses payloads longer than `u32::MAX` (they could not be declared in the
/// prefix).  Does not flush — callers batching several frames flush once.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            ErrorKind::InvalidInput,
            format!(
                "payload of {} bytes exceeds the u32 frame prefix",
                payload.len()
            ),
        )
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)
}

/// Read one frame's payload, allocating at most `max_payload` bytes.
///
/// End-of-stream before the first prefix byte is [`FrameError::Closed`];
/// end-of-stream anywhere later is [`FrameError::Truncated`].
pub fn read_frame(reader: &mut impl Read, max_payload: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_or(reader, &mut prefix, true)?;
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max_payload {
        return Err(FrameError::Oversized {
            declared,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; declared];
    read_exact_or(reader, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` that maps end-of-stream to [`FrameError::Closed`] when no
/// byte of `buf` has arrived yet and `clean_close_ok` is set, and to
/// [`FrameError::Truncated`] otherwise.
fn read_exact_or(
    reader: &mut impl Read,
    buf: &mut [u8],
    clean_close_ok: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && clean_close_ok {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        missing: buf.len() - filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "🚀 second".as_bytes()).unwrap();
        let mut stream = Cursor::new(buf);
        assert_eq!(read_frame(&mut stream, 1024).unwrap(), b"first");
        assert_eq!(read_frame(&mut stream, 1024).unwrap(), b"");
        assert_eq!(
            read_frame(&mut stream, 1024).unwrap(),
            "🚀 second".as_bytes()
        );
        assert!(read_frame(&mut stream, 1024).unwrap_err().is_closed());
    }

    #[test]
    fn truncated_prefix_and_payload_are_not_clean_closes() {
        // Two bytes of a four-byte prefix.
        let mut stream = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut stream, 1024),
            Err(FrameError::Truncated { missing: 2 })
        ));
        // Full prefix declaring 8 bytes, only 3 delivered.
        let mut partial = Vec::new();
        write_frame(&mut partial, b"12345678").unwrap();
        partial.truncate(4 + 3);
        let mut stream = Cursor::new(partial);
        assert!(matches!(
            read_frame(&mut stream, 1024),
            Err(FrameError::Truncated { missing: 5 })
        ));
    }

    #[test]
    fn oversized_declaration_fails_before_allocating() {
        let mut stream = Cursor::new(u32::MAX.to_be_bytes().to_vec());
        match read_frame(&mut stream, 1024) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn payload_at_exactly_the_cap_is_accepted() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 16]).unwrap();
        let mut stream = Cursor::new(buf);
        assert_eq!(read_frame(&mut stream, 16).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn errors_display_and_chain() {
        let err = FrameError::from(io::Error::new(ErrorKind::ConnectionReset, "reset"));
        assert!(err.to_string().contains("reset"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(!err.is_closed());
        assert!(FrameError::Closed.to_string().contains("closed"));
    }
}

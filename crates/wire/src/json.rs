//! A small, strict JSON data model, parser, and encoder.
//!
//! Promoted out of `dd_bench::sweeps` (where it parsed `BENCH_sweeps.json`
//! for the CI perf gate) so the network protocol shares the same
//! implementation.  The parser accepts arbitrary well-formed JSON — including
//! `\uXXXX` escapes with surrogate pairs — and rejects everything else with a
//! byte-offset error message, so a truncated or hand-mangled document fails
//! loudly instead of being half-read.  The encoder produces a canonical
//! single-line form that the parser round-trips.
//!
//! ```
//! use dd_wire::json::{parse, Json};
//!
//! let value = parse(r#"{"op": "query", "top_k": 3}"#).unwrap();
//! assert_eq!(value.get("op").and_then(Json::as_str), Some("query"));
//! assert_eq!(value.get("top_k").and_then(Json::as_f64), Some(3.0));
//! assert_eq!(parse(&value.encode()).unwrap(), value);
//! ```

/// A parsed JSON value.
///
/// Objects preserve insertion order (they are a `Vec` of pairs, not a map):
/// encoding is deterministic and duplicate keys are representable, with
/// [`Json::get`] resolving to the first occurrence like most JSON readers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// First value of `key`, if this is an `Object` containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Encode to the canonical single-line JSON text.
    ///
    /// Non-finite numbers have no JSON representation and encode as `null`
    /// (the usual lenient-writer convention); everything else round-trips
    /// through [`parse`].
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction; `{:?}` keeps
                    // full f64 round-trip precision for the rest.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n:?}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// RFC 8259 number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
/// `f64::parse` is more lenient (leading zeros, `1.`, `+1`, `inf`), so the
/// syntax is checked separately to keep the parser strict.
fn is_valid_number_syntax(text: &str) -> bool {
    let mut rest = text.strip_prefix('-').unwrap_or(text).as_bytes();
    // Integer part: one zero, or a nonzero digit followed by any digits.
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', tail @ ..] => {
            rest = tail;
            while let [b'0'..=b'9', tail @ ..] = rest {
                rest = tail;
            }
        }
        _ => return false,
    }
    // Optional fraction: '.' followed by at least one digit.
    if let [b'.', tail @ ..] = rest {
        rest = tail;
        let [b'0'..=b'9', ..] = rest else {
            return false;
        };
        while let [b'0'..=b'9', tail @ ..] = rest {
            rest = tail;
        }
    }
    // Optional exponent: e/E, optional sign, at least one digit.
    if let [b'e' | b'E', tail @ ..] = rest {
        rest = tail;
        if let [b'+' | b'-', tail @ ..] = rest {
            rest = tail;
        }
        let [b'0'..=b'9', ..] = rest else {
            return false;
        };
        while let [b'0'..=b'9', tail @ ..] = rest {
            rest = tail;
        }
    }
    rest.is_empty()
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            // Raw UTF-8 is valid JSON; no need to escape non-ASCII.
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting [`parse`] accepts.  The parser is recursive
/// descent, so without a bound a few kilobytes of `[` characters would
/// overflow the thread stack — an abort no `catch_unwind` can stop.  128
/// levels is far beyond any document this workspace produces.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Parse one JSON document.  Trailing non-whitespace content is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_NESTING_DEPTH} levels")));
        }
        Ok(())
    }

    fn error(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {message}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            // A high surrogate must be followed by an escaped
                            // low surrogate; combine them into one scalar.
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("bad \\u codepoint"))?,
                            );
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences arrive as
                    // raw bytes; re-decode from the remaining slice).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Read the four hex digits of a `\uXXXX` escape (cursor on the `u`),
    /// leaving the cursor on the last digit.
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.error("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_valid_number_syntax(text) {
            return Err(self.error(&format!("bad number '{text}'")));
        }
        match text.parse::<f64>() {
            // Overflowing literals (1e999) parse to infinity, which has no
            // JSON representation — accepting it would break the
            // parse/encode round-trip, so refuse it up front.
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => Err(self.error(&format!("number '{text}' is out of range"))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_kinds() {
        let value = parse(r#"{"a": [1, -2.5, true, false, null, "s"], "b": {}}"#).unwrap();
        let items = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0], Json::Number(1.0));
        assert_eq!(items[1], Json::Number(-2.5));
        assert_eq!(items[2], Json::Bool(true));
        assert_eq!(items[3], Json::Bool(false));
        assert_eq!(items[4], Json::Null);
        assert_eq!(items[5].as_str(), Some("s"));
        assert_eq!(value.get("b"), Some(&Json::Object(Vec::new())));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("[{\"name\": \"x\"").is_err()); // truncated
        assert!(parse("[1, 2,]").is_err()); // trailing comma
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("{\"a\" 1}").is_err()); // missing colon
    }

    #[test]
    fn number_syntax_is_rfc_strict_and_finite() {
        // Lenient forms f64::parse would accept are rejected.
        assert!(parse("[01]").is_err()); // leading zero
        assert!(parse("[1.]").is_err()); // trailing dot
        assert!(parse("[.5]").is_err()); // missing integer part
        assert!(parse("[+1]").is_err()); // leading plus
        assert!(parse("[1e]").is_err()); // empty exponent
        assert!(parse("[1e+]").is_err());
        assert!(parse("[-]").is_err());
        // Overflow-to-infinity is refused, not silently absorbed.
        assert!(parse("[1e999]").unwrap_err().contains("out of range"));
        assert!(parse("[-1e999]").is_err());
        // The valid grammar still parses.
        for ok in ["0", "-0", "10", "0.5", "-2.25", "1e3", "1E-3", "1.5e+2"] {
            assert!(parse(ok).is_ok(), "rejected valid number {ok}");
        }
    }

    #[test]
    fn parses_escapes_and_negative_exponents() {
        let value = parse("{\"name\": \"a\\\"b\\u0041\\n\", \"value\": -1.5e2}").unwrap();
        assert_eq!(value.get("name").and_then(Json::as_str), Some("a\"bA\n"));
        assert_eq!(value.get("value").and_then(Json::as_f64), Some(-150.0));
    }

    #[test]
    fn parses_surrogate_pairs_and_rejects_lone_surrogates() {
        assert_eq!(
            parse("\"\\ud83d\\ude80!\"").unwrap(),
            Json::String("🚀!".to_string())
        );
        assert!(parse("\"\\ud83dX\"").is_err()); // high surrogate, no low
        assert!(parse("\"\\ude80\"").is_err()); // lone low surrogate
        assert!(parse("\"\\ud83d\\u0041\"").is_err()); // bad low surrogate
    }

    #[test]
    fn encode_round_trips_through_parse() {
        let value = Json::Object(vec![
            ("int".to_string(), Json::Number(42.0)),
            ("float".to_string(), Json::Number(0.1 + 0.2)),
            ("neg".to_string(), Json::Number(-1.5e-8)),
            (
                "text".to_string(),
                Json::String("quote\" slash\\ nl\n tab\t nul\u{1} 🚀".to_string()),
            ),
            ("flag".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
            (
                "nested".to_string(),
                Json::Array(vec![Json::Number(1.0), Json::Object(Vec::new())]),
            ),
        ]);
        assert_eq!(parse(&value.encode()).unwrap(), value);
    }

    #[test]
    fn encode_prints_integral_numbers_without_fraction() {
        assert_eq!(Json::Number(3.0).encode(), "3");
        assert_eq!(Json::Number(-7.0).encode(), "-7");
        assert_eq!(Json::Number(2.5).encode(), "2.5");
        // Non-finite numbers degrade to null rather than emitting invalid JSON.
        assert_eq!(Json::Number(f64::NAN).encode(), "null");
        assert_eq!(Json::Number(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn nesting_is_bounded_so_hostile_depth_cannot_blow_the_stack() {
        // A few KB of '[' must be a parse error, not a stack overflow abort.
        let hostile = "[".repeat(100_000);
        let err = parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "got: {err}");
        // Mixed-container depth counts too.
        let mixed = "{\"a\":".repeat(200) + "1" + &"}".repeat(200);
        assert!(parse(&mixed).is_err());
        // Reasonable depth (well under the cap) still round-trips.
        let deep = "[".repeat(64) + "1" + &"]".repeat(64);
        let value = parse(&deep).unwrap();
        assert_eq!(parse(&value.encode()).unwrap(), value);
    }

    #[test]
    fn get_resolves_first_duplicate_key() {
        let value = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(value.get("k").and_then(Json::as_f64), Some(1.0));
    }
}

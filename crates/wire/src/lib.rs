//! The wire layer shared by `dd-server` and the bench tooling.
//!
//! The workspace is fully offline (vendored stand-in dependencies only), so
//! everything that would normally come from `serde_json` + `tokio` codecs is
//! hand-rolled here, in the same spirit as the `vendor/` stand-ins:
//!
//! * [`json`] — a small, strict JSON data model ([`json::Json`]), parser, and
//!   encoder.  This started life inside `dd_bench::sweeps` as the
//!   `BENCH_sweeps.json` reader; it was promoted here so the network
//!   protocol's encode/decode and the CI perf gate share one implementation
//!   (surrogate-pair handling and all).
//! * [`frame`] — length-prefixed message framing over any `Read`/`Write`
//!   byte stream: a 4-byte big-endian payload length followed by the payload.
//!   Reads are bounded by an explicit payload-size cap so a hostile or
//!   corrupt peer cannot make the server allocate unboundedly, and every
//!   failure mode (clean close, truncated prefix, truncated payload,
//!   oversized declaration) is a distinct [`frame::FrameError`] variant.
//! * [`record`] — the frame layout extended with a CRC-32 checksum and a
//!   monotone sequence number, for `dd-storage`'s write-ahead log and
//!   checkpoint files: torn tails and bit flips decode to typed errors,
//!   never to panics or silently-corrupt payloads.
//!
//! Nothing in this crate knows about snapshots or engines; it is pure bytes
//! and values, which is what lets `dd-bench` depend on it without pulling in
//! the serving stack.

pub mod frame;
pub mod json;
pub mod record;

pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use json::Json;
pub use record::{
    crc32, encode_record, read_record, write_record, RecordError, MAX_PAYLOAD_BYTES,
    MAX_RECORD_BYTES,
};

//! Checksummed, sequence-numbered record framing for durable storage.
//!
//! A record extends the plain [`frame`](crate::frame) layout with exactly the
//! two fields a write-ahead log needs to survive crashes:
//!
//! ```text
//! [u32 payload len (BE)] [u32 CRC-32 (BE)] [u64 sequence (BE)] [payload…]
//! ```
//!
//! The CRC-32 (IEEE polynomial, the one Ethernet/zip/PNG use) covers the
//! sequence number *and* the payload, so a bit flip anywhere after the length
//! prefix is detected.  The length prefix itself is implicitly validated: a
//! flipped length either trips the reader's cap ([`RecordError::Oversized`]),
//! runs past end-of-file ([`RecordError::Truncated`]), or shifts the CRC
//! window so the checksum no longer matches ([`RecordError::Corrupt`]).
//!
//! Like the frame layer, every failure mode is a typed error — **never a
//! panic, never silently accepted bytes**:
//!
//! * [`RecordError::Closed`] — end-of-stream on a record boundary; the normal
//!   end of a well-formed log.
//! * [`RecordError::Truncated`] — end-of-stream inside a record; a torn write
//!   from a crash.  Storage layers truncate the log here.
//! * [`RecordError::Oversized`] — the prefix declares more than the reader's
//!   cap; bounded allocation, exactly as in [`read_frame`](crate::read_frame).
//! * [`RecordError::Corrupt`] — checksum mismatch; a bit flip or a torn write
//!   that happened to leave enough bytes behind.
//!
//! Sequence numbers are carried, not policed: the storage layer knows what
//! sequence it expects next and treats a mismatch as corruption, but this
//! layer only guarantees the number read is the number written.
//!
//! ```
//! use dd_wire::record::{read_record, write_record, RecordError};
//! use std::io::Cursor;
//!
//! let mut buf = Vec::new();
//! write_record(&mut buf, 7, b"payload").unwrap();
//! let mut stream = Cursor::new(buf);
//! assert_eq!(read_record(&mut stream, 1024).unwrap(), (7, b"payload".to_vec()));
//! assert!(matches!(read_record(&mut stream, 1024), Err(RecordError::Closed)));
//! ```

use std::io::{self, ErrorKind, Read, Write};

/// Default cap on a single record's payload for *streaming* readers — the
/// same bound as the wire frames.  Readers of trusted local files (the WAL
/// and checkpoint stores) instead cap at the file's own size, so a durable
/// record may legitimately exceed this.
pub const MAX_RECORD_BYTES: usize = crate::frame::MAX_FRAME_BYTES;

/// Hard ceiling on a single payload: the most the u32 length prefix can
/// carry.  Writers enforce it ([`write_record`], and the storage layer's
/// append/write paths with a typed error), which guarantees that any record a
/// writer accepted can be read back by a reader whose cap is at least the
/// containing file's size.
pub const MAX_PAYLOAD_BYTES: usize = u32::MAX as usize;

/// Bytes of header before the payload: length + checksum + sequence.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8;

/// CRC-32 (IEEE, reflected, polynomial `0xEDB88320`) lookup table, built at
/// compile time so the hot loop is one shift + one table load per byte.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.  Matches zlib's `crc32(0, …)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a record could not be read.
#[derive(Debug)]
pub enum RecordError {
    /// The stream ended cleanly on a record boundary (well-formed end of log).
    Closed,
    /// The stream ended mid-record: a torn write.  Carries how many bytes were
    /// still expected.
    Truncated { missing: usize },
    /// The prefix declared a payload larger than the reader's cap.
    Oversized { declared: usize, max: usize },
    /// The checksum did not match the header+payload bytes read.
    Corrupt { stored: u32, computed: u32 },
    /// An I/O error other than end-of-stream.
    Io(io::Error),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Closed => write!(f, "log ended on a record boundary"),
            RecordError::Truncated { missing } => {
                write!(f, "log truncated mid-record ({missing} bytes missing)")
            }
            RecordError::Oversized { declared, max } => {
                write!(f, "record declares {declared} bytes, cap is {max}")
            }
            RecordError::Corrupt { stored, computed } => write!(
                f,
                "record checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            RecordError::Io(err) => write!(f, "record I/O error: {err}"),
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for RecordError {
    fn from(err: io::Error) -> Self {
        RecordError::Io(err)
    }
}

impl RecordError {
    /// True for the clean end-of-log case.
    pub fn is_closed(&self) -> bool {
        matches!(self, RecordError::Closed)
    }

    /// True for the cases a WAL reader treats as a torn/corrupt tail to
    /// truncate at the previous record: everything except a clean close and a
    /// non-EOF I/O error (which is an environment failure, not bad bytes).
    pub fn is_tail_damage(&self) -> bool {
        matches!(
            self,
            RecordError::Truncated { .. }
                | RecordError::Oversized { .. }
                | RecordError::Corrupt { .. }
        )
    }
}

/// Encode one record to a buffer: header then payload.
///
/// Panics never; payloads longer than `u32::MAX` are refused by
/// [`write_record`], and in-memory encoding of such a payload would already
/// have failed to allocate.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    let len = payload.len() as u32;
    let seq_be = seq.to_be_bytes();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in seq_be.iter().chain(payload.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&(!crc).to_be_bytes());
    buf.extend_from_slice(&seq_be);
    buf.extend_from_slice(payload);
    buf
}

/// Write one record: length, checksum, sequence, payload.
///
/// Refuses payloads longer than [`MAX_PAYLOAD_BYTES`].  Does not flush or
/// sync — the storage layer owns the fsync policy.
pub fn write_record(writer: &mut impl Write, seq: u64, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_PAYLOAD_BYTES {
        return Err(io::Error::new(
            ErrorKind::InvalidInput,
            format!(
                "payload of {} bytes exceeds the u32 record prefix",
                payload.len()
            ),
        ));
    }
    writer.write_all(&encode_record(seq, payload))
}

/// Read one record, allocating at most `max_payload` bytes, verifying the
/// checksum, and returning `(sequence, payload)`.
///
/// End-of-stream before the first header byte is [`RecordError::Closed`];
/// end-of-stream anywhere later is [`RecordError::Truncated`].
pub fn read_record(
    reader: &mut impl Read,
    max_payload: usize,
) -> Result<(u64, Vec<u8>), RecordError> {
    let mut header = [0u8; RECORD_HEADER_BYTES];
    read_exact_or(reader, &mut header[..4], true)?;
    let declared = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if declared > max_payload {
        return Err(RecordError::Oversized {
            declared,
            max: max_payload,
        });
    }
    read_exact_or(reader, &mut header[4..], false)?;
    let stored = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    let seq = u64::from_be_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    let mut payload = vec![0u8; declared];
    read_exact_or(reader, &mut payload, false)?;
    let mut check = Vec::with_capacity(8 + payload.len());
    check.extend_from_slice(&header[8..]);
    check.extend_from_slice(&payload);
    let computed = crc32(&check);
    if computed != stored {
        return Err(RecordError::Corrupt { stored, computed });
    }
    Ok((seq, payload))
}

/// `read_exact` that maps end-of-stream to [`RecordError::Closed`] when no
/// byte of `buf` has arrived yet and `clean_close_ok` is set, and to
/// [`RecordError::Truncated`] otherwise.
fn read_exact_or(
    reader: &mut impl Read,
    buf: &mut [u8],
    clean_close_ok: bool,
) -> Result<(), RecordError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && clean_close_ok {
                    Err(RecordError::Closed)
                } else {
                    Err(RecordError::Truncated {
                        missing: buf.len() - filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(err) => return Err(RecordError::Io(err)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn records_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, b"first").unwrap();
        write_record(&mut buf, 2, b"").unwrap();
        write_record(&mut buf, u64::MAX, "🚀 third".as_bytes()).unwrap();
        let mut stream = Cursor::new(buf);
        assert_eq!(
            read_record(&mut stream, 1024).unwrap(),
            (1, b"first".to_vec())
        );
        assert_eq!(read_record(&mut stream, 1024).unwrap(), (2, Vec::new()));
        assert_eq!(
            read_record(&mut stream, 1024).unwrap(),
            (u64::MAX, "🚀 third".as_bytes().to_vec())
        );
        assert!(read_record(&mut stream, 1024).unwrap_err().is_closed());
    }

    #[test]
    fn encode_and_write_agree() {
        let mut buf = Vec::new();
        write_record(&mut buf, 42, b"same bytes").unwrap();
        assert_eq!(buf, encode_record(42, b"same bytes"));
    }

    #[test]
    fn truncation_at_every_byte_boundary_is_typed() {
        let full = encode_record(9, b"some payload worth checking");
        for cut in 0..full.len() {
            let mut stream = Cursor::new(full[..cut].to_vec());
            match read_record(&mut stream, 1024) {
                Err(RecordError::Closed) => assert_eq!(cut, 0),
                Err(RecordError::Truncated { missing }) => {
                    assert!(missing > 0, "cut at {cut} reported zero missing bytes")
                }
                other => panic!("cut at {cut}: expected Closed/Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let full = encode_record(7, b"bit flips must never pass");
        for byte in 0..full.len() {
            for bit in 0..8 {
                let mut damaged = full.clone();
                damaged[byte] ^= 1 << bit;
                let mut stream = Cursor::new(damaged);
                match read_record(&mut stream, full.len() + 64) {
                    Err(RecordError::Corrupt { stored, computed }) => {
                        assert_ne!(stored, computed)
                    }
                    // A flipped length bit can also declare too much or run
                    // off the end of the buffer — both are typed, both fine.
                    Err(RecordError::Oversized { .. }) | Err(RecordError::Truncated { .. }) => {}
                    Ok((seq, payload)) => panic!(
                        "flip {byte}/{bit} accepted: seq {seq}, {} bytes",
                        payload.len()
                    ),
                    Err(other) => panic!("flip {byte}/{bit}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_declaration_fails_before_allocating() {
        let mut stream = Cursor::new(u32::MAX.to_be_bytes().to_vec());
        match read_record(&mut stream, 1024) {
            Err(RecordError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_and_chain() {
        let err = RecordError::from(io::Error::new(ErrorKind::ConnectionReset, "reset"));
        assert!(err.to_string().contains("reset"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(!err.is_closed());
        assert!(!err.is_tail_damage());
        assert!(RecordError::Closed.is_closed());
        let torn = RecordError::Truncated { missing: 3 };
        assert!(torn.is_tail_damage());
        assert!(torn.to_string().contains("3 bytes"));
        let bad = RecordError::Corrupt {
            stored: 1,
            computed: 2,
        };
        assert!(bad.is_tail_damage());
        assert!(bad.to_string().contains("mismatch"));
    }
}

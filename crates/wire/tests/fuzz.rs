//! Seeded corruption fuzzing of the frame and record decoders.
//!
//! Every test starts from a stream of valid frames/records, applies a
//! deterministic (seeded) corruption — bit flips, truncation, or both — and
//! asserts the decoder either returns data or a typed error.  Nothing here
//! inspects *which* error beyond the documented taxonomy; the property under
//! test is "hostile bytes can never panic or hang the decoder, and truncation
//! is always reported as truncation".

use dd_wire::record::RecordError;
use dd_wire::{read_frame, read_record, write_frame, write_record, FrameError};
use std::io::Cursor;

/// SplitMix64 — the same tiny deterministic PRNG the server tests use.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A stream of a few valid frames with mixed payload sizes.
fn valid_frames(rng: &mut SplitMix64) -> Vec<u8> {
    let mut buf = Vec::new();
    for _ in 0..4 {
        let len = rng.below(200);
        let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        write_frame(&mut buf, &payload).unwrap();
    }
    buf
}

/// A stream of a few valid records with consecutive sequence numbers.
fn valid_records(rng: &mut SplitMix64) -> Vec<u8> {
    let mut buf = Vec::new();
    for seq in 1..=4u64 {
        let len = rng.below(200);
        let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        write_record(&mut buf, seq, &payload).unwrap();
    }
    buf
}

/// Drain a frame stream; count decoded frames; panic only if the decoder does.
fn drain_frames(bytes: Vec<u8>, cap: usize) -> usize {
    let mut stream = Cursor::new(bytes);
    let mut decoded = 0;
    loop {
        match read_frame(&mut stream, cap) {
            Ok(_) => decoded += 1,
            Err(FrameError::Closed) => return decoded,
            Err(FrameError::Truncated { .. })
            | Err(FrameError::Oversized { .. })
            | Err(FrameError::Io(_)) => return decoded,
        }
    }
}

/// Drain a record stream; count records that decoded with a valid checksum.
fn drain_records(bytes: Vec<u8>, cap: usize) -> usize {
    let mut stream = Cursor::new(bytes);
    let mut decoded = 0;
    loop {
        match read_record(&mut stream, cap) {
            Ok(_) => decoded += 1,
            Err(RecordError::Closed) => return decoded,
            Err(RecordError::Truncated { .. })
            | Err(RecordError::Oversized { .. })
            | Err(RecordError::Corrupt { .. })
            | Err(RecordError::Io(_)) => return decoded,
        }
    }
}

#[test]
fn random_bit_flips_never_panic_frame_decoding() {
    let mut rng = SplitMix64(0xF1A6);
    for _ in 0..200 {
        let mut bytes = valid_frames(&mut rng);
        for _ in 0..1 + rng.below(8) {
            let pos = rng.below(bytes.len());
            bytes[pos] ^= 1 << rng.below(8);
        }
        drain_frames(bytes, 4096);
    }
}

#[test]
fn random_bit_flips_never_panic_record_decoding() {
    let mut rng = SplitMix64(0x5EED);
    for _ in 0..200 {
        let mut bytes = valid_records(&mut rng);
        for _ in 0..1 + rng.below(8) {
            let pos = rng.below(bytes.len());
            bytes[pos] ^= 1 << rng.below(8);
        }
        drain_records(bytes, 4096);
    }
}

#[test]
fn truncation_at_every_length_yields_typed_errors() {
    let mut rng = SplitMix64(0x7123);
    let frames = valid_frames(&mut rng);
    for cut in 0..frames.len() {
        drain_frames(frames[..cut].to_vec(), 4096);
    }
    let records = valid_records(&mut rng);
    for cut in 0..records.len() {
        drain_records(records[..cut].to_vec(), 4096);
    }
}

#[test]
fn mid_record_truncation_is_reported_as_truncated_not_closed() {
    let mut buf = Vec::new();
    write_record(&mut buf, 1, b"intact").unwrap();
    let mark = buf.len();
    write_record(&mut buf, 2, b"this one gets torn").unwrap();
    // Cut strictly inside the second record, at every possible boundary.
    for cut in mark + 1..buf.len() {
        let mut stream = Cursor::new(buf[..cut].to_vec());
        assert!(read_record(&mut stream, 4096).is_ok());
        match read_record(&mut stream, 4096) {
            Err(RecordError::Truncated { missing }) => assert!(missing > 0),
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    // Cut exactly between the two records: a clean close.
    let mut stream = Cursor::new(buf[..mark].to_vec());
    assert!(read_record(&mut stream, 4096).is_ok());
    assert!(read_record(&mut stream, 4096).unwrap_err().is_closed());
}

#[test]
fn single_bit_flips_in_record_payload_are_always_caught() {
    let mut rng = SplitMix64(0xBEEF);
    let mut buf = Vec::new();
    write_record(
        &mut buf,
        1,
        b"the checksum window covers sequence and payload",
    )
    .unwrap();
    for _ in 0..500 {
        let mut damaged = buf.clone();
        let pos = rng.below(damaged.len());
        damaged[pos] ^= 1 << rng.below(8);
        let mut stream = Cursor::new(damaged);
        match read_record(&mut stream, 4096) {
            Ok(_) => panic!("a single bit flip at byte {pos} went undetected"),
            Err(err) => assert!(
                err.is_tail_damage(),
                "flip at byte {pos} produced unexpected {err:?}"
            ),
        }
    }
}

#[test]
fn oversized_prefixes_fail_before_allocation_under_fuzz() {
    let mut rng = SplitMix64(0xCAFE);
    for _ in 0..100 {
        // A length prefix far above the cap followed by random garbage.
        let declared = 4096 + rng.below(1 << 20) as u32;
        let mut bytes = declared.to_be_bytes().to_vec();
        for _ in 0..rng.below(64) {
            bytes.push(rng.next() as u8);
        }
        let mut stream = Cursor::new(bytes.clone());
        assert!(matches!(
            read_frame(&mut stream, 4096),
            Err(FrameError::Oversized { .. })
        ));
        let mut stream = Cursor::new(bytes);
        assert!(matches!(
            read_record(&mut stream, 4096),
            Err(RecordError::Oversized { .. })
        ));
    }
}

//! Synthetic corpus generation.
//!
//! The real corpora (1.8 M news articles, 5 M adversarial ads, …) cannot be
//! shipped, so this module plants a ground-truth knowledge base and generates
//! documents whose sentences mention entity pairs with either *indicative*
//! phrases ("and his wife") or *neutral* phrases ("met with"), plus noise and a
//! configurable text-quality level.  The resulting database has exactly the
//! schema of the paper's running example (Figure 2): `Sentence`,
//! `PersonCandidate`, `EL` (entity linking), `Married` (the incomplete KB used
//! for distant supervision), and `Sibling` (a largely-disjoint relation used to
//! generate negative examples, Example 2.4).

use dd_relstore::{DataType, Database, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of documents (one sentence with one mention pair each).
    pub num_documents: usize,
    /// Number of distinct entities.
    pub num_entities: usize,
    /// Number of truly married entity pairs planted in the ground truth.
    pub num_true_pairs: usize,
    /// Fraction of true pairs present in the (incomplete) `Married` KB used for
    /// distant supervision.
    pub kb_coverage: f64,
    /// Probability that a sentence about a true pair uses a neutral phrase (and
    /// vice versa) — label noise.
    pub noise: f64,
    /// Probability that a sentence is garbled (phrase replaced by junk tokens),
    /// modelling the low text quality of the Adversarial corpus.
    pub garble: f64,
    /// Fraction of mentions that get an entity-linking record.
    pub el_coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_documents: 200,
            num_entities: 40,
            num_true_pairs: 12,
            kb_coverage: 0.5,
            noise: 0.1,
            garble: 0.0,
            el_coverage: 1.0,
            seed: 42,
        }
    }
}

/// Indicative phrases correlated with the HasSpouse relation.
pub const INDICATIVE_PHRASES: &[&str] = &[
    "and his wife",
    "and her husband",
    "married",
    "is the spouse of",
    "wed",
];

/// Neutral phrases uncorrelated with the relation.
pub const NEUTRAL_PHRASES: &[&str] = &[
    "met with",
    "talked to",
    "works with",
    "attended a dinner with",
    "was photographed near",
];

/// A generated corpus: the loaded database plus the planted ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub database: Database,
    /// Ground-truth mention pairs `(m1, m2)` that really are married.
    pub truth: HashSet<Tuple>,
    /// Ground-truth entity pairs.
    pub true_entity_pairs: HashSet<(usize, usize)>,
    pub config: CorpusConfig,
}

impl Corpus {
    /// Generate a corpus.
    pub fn generate(config: CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
        )
        .expect("fresh database");
        db.create_table(
            "PersonCandidate",
            Schema::of(&[
                ("s", DataType::Int),
                ("m", DataType::Int),
                ("t", DataType::Text),
            ]),
        )
        .expect("fresh database");
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .expect("fresh database");
        db.create_table(
            "Married",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .expect("fresh database");
        db.create_table(
            "Sibling",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .expect("fresh database");

        // Plant the ground-truth entity pairs (disjoint pairs 2k, 2k+1 …).  The
        // construction iterates these lists while drawing random numbers, so they
        // are kept in a deterministic order.
        let mut true_pairs_vec: Vec<(usize, usize)> = Vec::new();
        let mut k = 0usize;
        while true_pairs_vec.len() < config.num_true_pairs && 2 * k + 1 < config.num_entities {
            true_pairs_vec.push((2 * k, 2 * k + 1));
            k += 1;
        }
        // Sibling pairs: disjoint from the married pairs (offset by one).
        let mut sibling_pairs: Vec<(usize, usize)> = Vec::new();
        let mut j = 0usize;
        while sibling_pairs.len() < config.num_true_pairs / 2 && 2 * j + 2 < config.num_entities {
            sibling_pairs.push((2 * j + 1, 2 * j + 2));
            j += 2;
        }
        let true_entity_pairs: HashSet<(usize, usize)> = true_pairs_vec.iter().copied().collect();

        // Distant-supervision KB: an incomplete slice of the true pairs.
        for &(a, b) in &true_pairs_vec {
            if rng.gen::<f64>() < config.kb_coverage {
                db.insert(
                    "Married",
                    Tuple::new(vec![
                        Value::text(entity_name(a)),
                        Value::text(entity_name(b)),
                    ]),
                )
                .expect("schema matches");
            }
        }
        for &(a, b) in &sibling_pairs {
            db.insert(
                "Sibling",
                Tuple::new(vec![
                    Value::text(entity_name(a)),
                    Value::text(entity_name(b)),
                ]),
            )
            .expect("schema matches");
        }

        // Documents.
        let mut truth: HashSet<Tuple> = HashSet::new();
        for doc in 0..config.num_documents {
            let s = doc as i64;
            // Half the documents talk about a true pair, half about a random pair.
            let (e1, e2, is_true) = if !true_pairs_vec.is_empty() && rng.gen::<f64>() < 0.5 {
                let &(a, b) = &true_pairs_vec[rng.gen_range(0..true_pairs_vec.len())];
                (a, b, true)
            } else {
                let a = rng.gen_range(0..config.num_entities);
                let mut b = rng.gen_range(0..config.num_entities);
                if b == a {
                    b = (a + 1) % config.num_entities;
                }
                let canonical = (a.min(b), a.max(b));
                (a, b, true_entity_pairs.contains(&canonical))
            };
            let m1 = (2 * doc) as i64;
            let m2 = (2 * doc + 1) as i64;

            // Choose the connecting phrase.
            let use_indicative = if is_true {
                rng.gen::<f64>() >= config.noise
            } else {
                rng.gen::<f64>() < config.noise
            };
            let phrase = if rng.gen::<f64>() < config.garble {
                format!("zzz{} qqq", rng.gen_range(0..5))
            } else if use_indicative {
                INDICATIVE_PHRASES[rng.gen_range(0..INDICATIVE_PHRASES.len())].to_string()
            } else {
                NEUTRAL_PHRASES[rng.gen_range(0..NEUTRAL_PHRASES.len())].to_string()
            };

            let t1 = entity_mention_text(e1, m1);
            let t2 = entity_mention_text(e2, m2);
            let content = format!("{t1} {phrase} {t2}");
            db.insert(
                "Sentence",
                Tuple::new(vec![Value::Int(s), Value::text(&content)]),
            )
            .expect("schema matches");
            db.insert(
                "PersonCandidate",
                Tuple::new(vec![Value::Int(s), Value::Int(m1), Value::text(&t1)]),
            )
            .expect("schema matches");
            db.insert(
                "PersonCandidate",
                Tuple::new(vec![Value::Int(s), Value::Int(m2), Value::text(&t2)]),
            )
            .expect("schema matches");

            // Entity linking (possibly incomplete).
            for (m, e) in [(m1, e1), (m2, e2)] {
                if rng.gen::<f64>() < config.el_coverage {
                    db.insert(
                        "EL",
                        Tuple::new(vec![Value::Int(m), Value::text(entity_name(e))]),
                    )
                    .expect("schema matches");
                }
            }

            if is_true {
                truth.insert(Tuple::new(vec![Value::Int(m1), Value::Int(m2)]));
            }
        }

        Corpus {
            database: db,
            truth,
            true_entity_pairs,
            config,
        }
    }

    /// Split the corpus into an initial database containing the first
    /// `fraction` of the documents and a list of per-document insertions for the
    /// rest — used to simulate new documents arriving during development.
    pub fn split_for_incremental(&self, fraction: f64) -> (Database, Vec<DocumentDelta>) {
        let cutoff = ((self.config.num_documents as f64) * fraction).round() as i64;
        let mut initial = Database::new();
        for table in self.database.tables() {
            initial.create_or_replace_table(table.name(), table.schema().clone());
        }
        let mut later: Vec<DocumentDelta> = Vec::new();

        for table in self.database.tables() {
            for row in table.iter() {
                let doc_id = match table.name() {
                    "Sentence" | "PersonCandidate" => row.get(0).and_then(|v| v.as_int()),
                    "EL" => row.get(0).and_then(|v| v.as_int()).map(|m| m / 2),
                    _ => None,
                };
                match doc_id {
                    Some(d) if d >= cutoff => {
                        let idx = (d - cutoff) as usize;
                        if later.len() <= idx {
                            later.resize_with(idx + 1, DocumentDelta::default);
                        }
                        later[idx]
                            .rows
                            .push((table.name().to_string(), row.clone()));
                    }
                    _ => {
                        initial
                            .table_mut(table.name())
                            .expect("table just created")
                            .insert(row.clone())
                            .expect("schema matches");
                    }
                }
            }
        }
        (initial, later)
    }
}

/// The rows belonging to one late-arriving document.
#[derive(Debug, Clone, Default)]
pub struct DocumentDelta {
    pub rows: Vec<(String, Tuple)>,
}

fn entity_name(e: usize) -> String {
    format!("Entity_{e}")
}

fn entity_mention_text(e: usize, m: i64) -> String {
    // Mention text is derived from the entity but unique per mention, so the
    // phrase UDF can find it inside the sentence.
    format!("Person{e}m{m}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let c = Corpus::generate(CorpusConfig {
            num_documents: 50,
            num_entities: 20,
            num_true_pairs: 6,
            ..Default::default()
        });
        assert_eq!(c.database.table("Sentence").unwrap().len(), 50);
        assert_eq!(c.database.table("PersonCandidate").unwrap().len(), 100);
        assert_eq!(c.true_entity_pairs.len(), 6);
        assert!(!c.truth.is_empty());
        assert!(c.database.table("Married").unwrap().len() <= 6);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = Corpus::generate(CorpusConfig::default());
        let b = Corpus::generate(CorpusConfig::default());
        assert_eq!(a.truth, b.truth);
        assert_eq!(
            a.database.table("Sentence").unwrap().sorted_tuples(),
            b.database.table("Sentence").unwrap().sorted_tuples()
        );
    }

    #[test]
    fn noise_zero_means_phrases_separate_classes() {
        let c = Corpus::generate(CorpusConfig {
            noise: 0.0,
            garble: 0.0,
            num_documents: 80,
            ..Default::default()
        });
        // Every true mention pair's sentence contains an indicative phrase.
        for t in &c.truth {
            let s = t.get(0).unwrap().as_int().unwrap() / 2;
            let sentence = c
                .database
                .table("Sentence")
                .unwrap()
                .iter()
                .find(|row| row.get(0).and_then(|v| v.as_int()) == Some(s))
                .unwrap()
                .clone();
            let content = sentence.get(1).unwrap().as_text().unwrap().to_string();
            assert!(
                INDICATIVE_PHRASES.iter().any(|p| content.contains(p)),
                "sentence `{content}` should contain an indicative phrase"
            );
        }
    }

    #[test]
    fn kb_is_incomplete_subset_of_truth() {
        let c = Corpus::generate(CorpusConfig {
            kb_coverage: 0.5,
            num_true_pairs: 10,
            num_entities: 40,
            ..Default::default()
        });
        let kb = c.database.table("Married").unwrap();
        assert!(kb.len() < 10);
        for row in kb.iter() {
            let e1 = row.get(0).unwrap().as_text().unwrap().to_string();
            assert!(e1.starts_with("Entity_"));
        }
    }

    #[test]
    fn split_for_incremental_partitions_documents() {
        let c = Corpus::generate(CorpusConfig {
            num_documents: 40,
            ..Default::default()
        });
        let (initial, later) = c.split_for_incremental(0.75);
        assert_eq!(initial.table("Sentence").unwrap().len(), 30);
        assert_eq!(later.len(), 10);
        let total_late_sentences: usize = later
            .iter()
            .map(|d| d.rows.iter().filter(|(t, _)| t == "Sentence").count())
            .sum();
        assert_eq!(total_late_sentences, 10);
    }
}

//! # dd-workloads — synthetic corpora, KBC systems, and tradeoff-study graphs
//!
//! The paper evaluates DeepDive on five real KBC deployments (News/TAC-KBP,
//! Adversarial, Genomics, Pharmacogenomics, Paleontology), on a synthetic
//! pairwise factor graph for the tradeoff study (Figure 5), on the Voting
//! program of Example 2.5 for the semantics/convergence study (Figures 12–13),
//! and on a chronological e-mail stream for the concept-drift study (Figure 17).
//! None of those corpora can be redistributed, so this crate generates synthetic
//! equivalents whose *structure* matches: documents with entity mentions and
//! indicative/neutral phrases drawn from a planted ground-truth KB, distant
//! supervision from an incomplete slice of that KB, and the same six rule
//! templates (A1, FE1, FE2, S1, S2, I1) applied as development-iteration
//! updates.
//!
//! * [`synthetic`] — pairwise factor graphs with controllable size, sparsity,
//!   and amount-of-change (Figure 5's three axes).
//! * [`voting`]   — the Voting program under Linear/Ratio/Logical semantics.
//! * [`corpus`]   — the synthetic document/mention/KB generator.
//! * [`systems`]  — the five KBC systems and their rule-template updates.
//! * [`spam`]     — the concept-drift e-mail stream.

pub mod corpus;
pub mod spam;
pub mod synthetic;
pub mod systems;
pub mod voting;

pub use corpus::{Corpus, CorpusConfig};
pub use spam::{spam_stream, SpamConfig, SpamStream};
pub use synthetic::{pairwise_graph, weight_perturbation, SyntheticConfig};
pub use systems::{KbcSystem, RuleTemplate, SystemKind};
pub use voting::voting_graph;

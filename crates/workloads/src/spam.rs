//! The concept-drift e-mail stream of Appendix B.4 (Figure 17).
//!
//! The paper follows Katakis et al.: 9,324 chronologically ordered e-mails,
//! predict spam vs ham, train on the first 10 % / 30 % and test on the remaining
//! 70 %.  Concept drift means the distribution generating the e-mails changes
//! over time.  The synthetic stream reproduces that setup: spam e-mails draw
//! their features from a spam vocabulary that *rotates* part-way through the
//! stream, so a model trained on the 10 % prefix is partially stale for the
//! 30 % prefix and the 70 % test suffix.

use dd_factorgraph::{Factor, FactorGraph, FactorGraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the synthetic e-mail stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpamConfig {
    /// Number of e-mails (the paper's dataset has 9,324; default is scaled down).
    pub num_emails: usize,
    /// Number of features (tokens) per e-mail.
    pub features_per_email: usize,
    /// Size of each vocabulary partition.
    pub vocabulary: usize,
    /// Position (fraction of the stream) at which the spam vocabulary rotates.
    pub drift_point: f64,
    /// Probability an e-mail is spam.
    pub spam_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpamConfig {
    fn default() -> Self {
        SpamConfig {
            num_emails: 900,
            features_per_email: 4,
            vocabulary: 30,
            drift_point: 0.2,
            spam_rate: 0.5,
            seed: 23,
        }
    }
}

/// One e-mail: its features (token strings) and its label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Email {
    pub features: Vec<String>,
    pub spam: bool,
}

/// The generated chronological stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpamStream {
    pub emails: Vec<Email>,
    pub config: SpamConfig,
}

/// Generate the stream.
pub fn spam_stream(config: SpamConfig) -> SpamStream {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let drift_at = (config.num_emails as f64 * config.drift_point) as usize;
    let mut emails = Vec::with_capacity(config.num_emails);
    for i in 0..config.num_emails {
        let spam = rng.gen::<f64>() < config.spam_rate;
        let drifted = i >= drift_at;
        let mut features = Vec::with_capacity(config.features_per_email);
        for _ in 0..config.features_per_email {
            let token = rng.gen_range(0..config.vocabulary);
            let feature = match (spam, drifted) {
                // Before the drift spam uses the "spamA" vocabulary; after, half
                // of its tokens come from a new "spamB" vocabulary instead.
                (true, false) => format!("spamA_{token}"),
                (true, true) => {
                    if rng.gen::<bool>() {
                        format!("spamB_{token}")
                    } else {
                        format!("spamA_{token}")
                    }
                }
                (false, _) => format!("ham_{token}"),
            };
            features.push(feature);
        }
        emails.push(Email { features, spam });
    }
    SpamStream { emails, config }
}

impl SpamStream {
    /// Number of e-mails.
    pub fn len(&self) -> usize {
        self.emails.len()
    }

    /// True if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.emails.is_empty()
    }

    /// Build the logistic-regression factor graph (Example 2.6:
    /// `Class(x) :- R(x, f) weight = w(f)`) over the e-mails in `range`, using
    /// their labels as evidence.  Returns the graph plus the feature→weight map.
    pub fn build_training_graph(
        &self,
        range: std::ops::Range<usize>,
    ) -> (FactorGraph, HashMap<String, usize>) {
        let mut b = FactorGraphBuilder::new();
        let mut weight_of: HashMap<String, usize> = HashMap::new();
        for email in &self.emails[range] {
            let v = b.add_evidence_variable(email.spam);
            for f in &email.features {
                let w = b.tied_weight(f, 0.0, false);
                weight_of.insert(f.clone(), w);
                b.add_factor(Factor::is_true(w, v));
            }
        }
        (b.build(), weight_of)
    }

    /// Average logistic loss of a feature-weight model over the e-mails in
    /// `range` — the "test set loss" axis of Figure 17.
    pub fn test_loss(
        &self,
        range: std::ops::Range<usize>,
        weight_of: &HashMap<String, usize>,
        weights: &[f64],
    ) -> f64 {
        let emails = &self.emails[range];
        if emails.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for email in emails {
            let score: f64 = email
                .features
                .iter()
                .filter_map(|f| weight_of.get(f).and_then(|&w| weights.get(w)))
                .sum();
            let p_spam = 1.0 / (1.0 + (-score).exp());
            let p = if email.spam { p_spam } else { 1.0 - p_spam };
            total -= p.max(1e-12).ln();
        }
        total / emails.len() as f64
    }

    /// Index marking the first `fraction` of the stream.
    pub fn prefix(&self, fraction: f64) -> usize {
        ((self.emails.len() as f64) * fraction).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_inference::{LearnOptions, Learner};

    #[test]
    fn stream_has_requested_shape() {
        let s = spam_stream(SpamConfig {
            num_emails: 200,
            ..Default::default()
        });
        assert_eq!(s.len(), 200);
        assert!(!s.is_empty());
        let spam_count = s.emails.iter().filter(|e| e.spam).count();
        assert!(spam_count > 50 && spam_count < 150);
        assert_eq!(s.prefix(0.1), 20);
    }

    #[test]
    fn drift_changes_the_spam_vocabulary() {
        let s = spam_stream(SpamConfig {
            num_emails: 400,
            drift_point: 0.5,
            ..Default::default()
        });
        let early_has_b = s.emails[..200]
            .iter()
            .any(|e| e.features.iter().any(|f| f.starts_with("spamB_")));
        let late_has_b = s.emails[200..]
            .iter()
            .any(|e| e.features.iter().any(|f| f.starts_with("spamB_")));
        assert!(!early_has_b);
        assert!(late_has_b);
    }

    #[test]
    fn training_on_prefix_reduces_test_loss() {
        let s = spam_stream(SpamConfig {
            num_emails: 300,
            ..Default::default()
        });
        let train_end = s.prefix(0.3);
        let (mut graph, weight_of) = s.build_training_graph(0..train_end);
        let untrained_loss = s.test_loss(train_end..s.len(), &weight_of, &graph.weight_values());
        Learner::new(&mut graph).learn(&LearnOptions {
            epochs: 25,
            learning_rate: 0.3,
            sweeps_per_epoch: 2,
            ..Default::default()
        });
        let trained_loss = s.test_loss(train_end..s.len(), &weight_of, &graph.weight_values());
        assert!(
            trained_loss < untrained_loss,
            "trained {trained_loss} should beat untrained {untrained_loss}"
        );
    }
}

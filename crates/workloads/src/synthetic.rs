//! Synthetic pairwise factor graphs for the tradeoff study (paper §3.2.4).
//!
//! "We use a synthetic factor graph with pairwise factors and control the
//! following axes: (1) number of variables …, (2) amount of change …,
//! (3) sparsity of correlations …  The numbers are reported for a factor graph
//! whose factor weights are sampled at random from [−0.5, 0.5]."

use dd_factorgraph::{Factor, FactorGraph, FactorGraphBuilder, GraphDelta, WeightChange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic pairwise graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of variables.
    pub num_variables: usize,
    /// Fraction of pairwise weights that are non-zero (the sparsity axis).
    pub sparsity: f64,
    /// Weights are drawn uniformly from `[-weight_range, weight_range]`.
    pub weight_range: f64,
    /// Average number of pairwise factors per variable.
    pub factors_per_variable: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_variables: 100,
            sparsity: 1.0,
            weight_range: 0.5,
            factors_per_variable: 2,
            seed: 17,
        }
    }
}

/// Generate a random pairwise factor graph per the configuration.
///
/// Factors connect each variable to `factors_per_variable` random partners with
/// `Equal` potentials; a `1 − sparsity` fraction of the weights is set to zero,
/// exactly how the paper's sparsity axis is constructed ("selecting uniformly at
/// random a subset of factors and set their weight to zero").
pub fn pairwise_graph(config: &SyntheticConfig) -> FactorGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = FactorGraphBuilder::new();
    let vars = b.add_query_variables(config.num_variables);
    let mut graph = b.build();

    if config.num_variables < 2 {
        return graph;
    }
    let num_factors = config.num_variables * config.factors_per_variable;
    for i in 0..num_factors {
        let a = vars[rng.gen_range(0..vars.len())];
        let mut c = vars[rng.gen_range(0..vars.len())];
        if c == a {
            c = vars[(a + 1) % vars.len()];
        }
        let zeroed = rng.gen::<f64>() > config.sparsity;
        let w = if zeroed {
            0.0
        } else {
            rng.gen_range(-config.weight_range..=config.weight_range)
        };
        let wid = graph.add_weight(dd_factorgraph::Weight::learnable(0, w, format!("pair:{i}")));
        graph.add_factor(Factor::equal(wid, a, c));
    }
    graph
}

/// A [`GraphDelta`] that perturbs a fraction of the weights by `magnitude`.
///
/// This is the "amount of change" knob of Figure 5(b): larger perturbations make
/// the updated distribution farther from the materialized one, which lowers the
/// acceptance rate of the sampling strategy.
pub fn weight_perturbation(
    graph: &FactorGraph,
    fraction: f64,
    magnitude: f64,
    seed: u64,
) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut changes = Vec::new();
    for w in graph.weights() {
        if rng.gen::<f64>() < fraction {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            changes.push(WeightChange {
                weight_id: w.id,
                new_value: w.value + sign * magnitude,
            });
        }
    }
    GraphDelta {
        weight_changes: changes,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_requested_size() {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: 50,
            factors_per_variable: 3,
            ..Default::default()
        });
        assert_eq!(g.num_variables(), 50);
        assert_eq!(g.num_factors(), 150);
        assert_eq!(g.num_weights(), 150);
    }

    #[test]
    fn sparsity_controls_nonzero_weights() {
        let dense = pairwise_graph(&SyntheticConfig {
            num_variables: 200,
            sparsity: 1.0,
            ..Default::default()
        });
        let sparse = pairwise_graph(&SyntheticConfig {
            num_variables: 200,
            sparsity: 0.1,
            ..Default::default()
        });
        assert!(dense.stats().weight_density > 0.95);
        assert!(sparse.stats().weight_density < 0.2);
    }

    #[test]
    fn weights_stay_in_range() {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: 100,
            weight_range: 0.5,
            ..Default::default()
        });
        assert!(g.weights().iter().all(|w| w.value.abs() <= 0.5));
    }

    #[test]
    fn degenerate_sizes_are_handled() {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: 1,
            ..Default::default()
        });
        assert_eq!(g.num_variables(), 1);
        assert_eq!(g.num_factors(), 0);
        let g2 = pairwise_graph(&SyntheticConfig {
            num_variables: 2,
            factors_per_variable: 1,
            ..Default::default()
        });
        // factors never connect a variable to itself
        for f in g2.factors() {
            let vars = f.variables();
            assert_ne!(vars[0], vars[1]);
        }
    }

    #[test]
    fn perturbation_scales_with_fraction_and_magnitude() {
        let g = pairwise_graph(&SyntheticConfig::default());
        let small = weight_perturbation(&g, 0.1, 0.1, 3);
        let large = weight_perturbation(&g, 0.9, 0.1, 3);
        assert!(large.weight_changes.len() > small.weight_changes.len());
        let none = weight_perturbation(&g, 0.0, 1.0, 3);
        assert!(none.is_empty());
        // deterministic for a fixed seed
        let again = weight_perturbation(&g, 0.1, 0.1, 3);
        assert_eq!(small, again);
    }
}

//! The five KBC systems and the six rule templates of the evaluation (§4.1).
//!
//! Figure 7 lists the systems (Adversarial, News, Genomics, Pharmacogenomics,
//! Paleontology) with their corpus sizes and factor-graph sizes; Figure 8 lists
//! the rule templates of News (A1 error analysis, FE1/FE2 feature extraction,
//! I1 inference, S1/S2 supervision).  Here each system is a scaled-down synthetic
//! corpus whose parameters (document count, text quality, relation ambiguity)
//! preserve the relative ordering of the real deployments, and the rule
//! templates are [`dd_grounding::KbcUpdate`]s that can be applied one by one to
//! simulate the development iterations of Figures 9 and 10(a).

use crate::corpus::{Corpus, CorpusConfig};
use dd_factorgraph::Semantics;
use dd_grounding::{parse_program, parse_rule, KbcUpdate, Program, Rule};
use dd_relstore::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The five KBC systems of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    Adversarial,
    News,
    Genomics,
    Pharmacogenomics,
    Paleontology,
}

impl SystemKind {
    /// All systems, in the order of Figure 7.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::Adversarial,
            SystemKind::News,
            SystemKind::Genomics,
            SystemKind::Pharmacogenomics,
            SystemKind::Paleontology,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Adversarial => "Adversarial",
            SystemKind::News => "News",
            SystemKind::Genomics => "Genomics",
            SystemKind::Pharmacogenomics => "Pharmacogenomics",
            SystemKind::Paleontology => "Paleontology",
        }
    }

    /// The statistics the paper reports for the real deployment
    /// (documents, relations, rules, variables, factors) — Figure 7.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            SystemKind::Adversarial => PaperStats::new(5_000_000, 1, 10, 0.1e9, 0.4e9),
            SystemKind::News => PaperStats::new(1_800_000, 34, 22, 0.2e9, 1.2e9),
            SystemKind::Genomics => PaperStats::new(200_000, 3, 15, 0.02e9, 0.1e9),
            SystemKind::Pharmacogenomics => PaperStats::new(600_000, 9, 24, 0.2e9, 1.2e9),
            SystemKind::Paleontology => PaperStats::new(300_000, 8, 29, 0.3e9, 0.4e9),
        }
    }

    /// The corpus configuration of the scaled-down synthetic equivalent.
    ///
    /// * document counts are proportional to the real corpora (÷ ~10⁴ at
    ///   `scale = 1.0`);
    /// * Adversarial gets heavy garbling (1–2 ungrammatical sentences per ad);
    /// * News gets moderate noise ("slightly degraded writing, ambiguous
    ///   relationships");
    /// * Genomics/Pharmacogenomics get precise text but ambiguous relations
    ///   (higher label noise);
    /// * Paleontology gets clean, precise text (low noise).
    pub fn corpus_config(self, scale: f64, seed: u64) -> CorpusConfig {
        let docs = |millions: f64| ((millions * 120.0 * scale).round() as usize).max(20);
        match self {
            SystemKind::Adversarial => CorpusConfig {
                num_documents: docs(5.0),
                num_entities: 80,
                num_true_pairs: 20,
                noise: 0.25,
                garble: 0.35,
                kb_coverage: 0.4,
                el_coverage: 0.8,
                seed,
            },
            SystemKind::News => CorpusConfig {
                num_documents: docs(1.8),
                num_entities: 60,
                num_true_pairs: 18,
                noise: 0.15,
                garble: 0.05,
                kb_coverage: 0.5,
                el_coverage: 0.9,
                seed,
            },
            SystemKind::Genomics => CorpusConfig {
                num_documents: docs(0.2),
                num_entities: 30,
                num_true_pairs: 8,
                noise: 0.2,
                garble: 0.0,
                kb_coverage: 0.5,
                el_coverage: 1.0,
                seed,
            },
            SystemKind::Pharmacogenomics => CorpusConfig {
                num_documents: docs(0.6),
                num_entities: 40,
                num_true_pairs: 12,
                noise: 0.18,
                garble: 0.0,
                kb_coverage: 0.5,
                el_coverage: 1.0,
                seed,
            },
            SystemKind::Paleontology => CorpusConfig {
                num_documents: docs(0.3),
                num_entities: 40,
                num_true_pairs: 12,
                noise: 0.05,
                garble: 0.0,
                kb_coverage: 0.6,
                el_coverage: 1.0,
                seed,
            },
        }
    }
}

/// Figure 7's per-system statistics for the real deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStats {
    pub documents: usize,
    pub relations: usize,
    pub rules: usize,
    pub variables: f64,
    pub factors: f64,
}

impl PaperStats {
    fn new(documents: usize, relations: usize, rules: usize, variables: f64, factors: f64) -> Self {
        PaperStats {
            documents,
            relations,
            rules,
            variables,
            factors,
        }
    }
}

/// The six rule templates of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleTemplate {
    /// Error analysis: read marginals, change nothing.
    A1,
    /// Shallow NLP features (the phrase between the mentions).
    FE1,
    /// Deeper NLP features (mention-text pair).
    FE2,
    /// Inference rule: symmetry of HasSpouse.
    I1,
    /// Positive examples by distant supervision from the Married KB.
    S1,
    /// Negative examples from the largely-disjoint Sibling relation.
    S2,
}

impl RuleTemplate {
    /// All templates in the order of Figure 9's rows.
    pub fn all() -> [RuleTemplate; 6] {
        [
            RuleTemplate::A1,
            RuleTemplate::FE1,
            RuleTemplate::FE2,
            RuleTemplate::I1,
            RuleTemplate::S1,
            RuleTemplate::S2,
        ]
    }

    /// The order in which the development-iteration snapshots apply the rules
    /// (features first, then supervision, then the inference rule, then the
    /// analysis query) — the sequence behind Figure 10(a).
    pub fn development_order() -> [RuleTemplate; 6] {
        [
            RuleTemplate::FE1,
            RuleTemplate::FE2,
            RuleTemplate::S1,
            RuleTemplate::S2,
            RuleTemplate::I1,
            RuleTemplate::A1,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            RuleTemplate::A1 => "A1",
            RuleTemplate::FE1 => "FE1",
            RuleTemplate::FE2 => "FE2",
            RuleTemplate::I1 => "I1",
            RuleTemplate::S1 => "S1",
            RuleTemplate::S2 => "S2",
        }
    }

    /// Description matching Figure 8.
    pub fn description(self) -> &'static str {
        match self {
            RuleTemplate::A1 => "Calculate marginal probability for variables or variable pairs",
            RuleTemplate::FE1 => "Shallow NLP features (e.g. word sequence)",
            RuleTemplate::FE2 => "Deeper NLP features (e.g. dependency path)",
            RuleTemplate::I1 => "Inference rules (e.g. symmetrical HasSpouse)",
            RuleTemplate::S1 => "Positive examples",
            RuleTemplate::S2 => "Negative examples",
        }
    }

    /// The rule added by this template, under the given semantics.
    pub fn rule(self, semantics: Semantics) -> Rule {
        let text = match self {
            RuleTemplate::A1 => "rule A1 analysis: Marginal(m1, m2) :- MarriedMentions(m1, m2).",
            RuleTemplate::FE1 => {
                "rule FE1 feature: MarriedMentions(m1, m2) :- \
                 MarriedCandidate(m1, m2), PersonCandidate(s, m1, t1), \
                 PersonCandidate(s, m2, t2), Sentence(s, content) \
                 weight = phrase(t1, t2, content)."
            }
            RuleTemplate::FE2 => {
                "rule FE2 feature: MarriedMentions(m1, m2) :- \
                 MarriedCandidate(m1, m2), PersonCandidate(s, m1, t1), \
                 PersonCandidate(s, m2, t2) \
                 weight = concat(t1, t2)."
            }
            RuleTemplate::I1 => {
                "rule I1 inference: MarriedMentions(m2, m1) :- MarriedMentions(m1, m2) \
                 weight = 1.5."
            }
            RuleTemplate::S1 => {
                "rule S1 supervision+: MarriedMentions(m1, m2) :- \
                 MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2)."
            }
            RuleTemplate::S2 => {
                "rule S2 supervision-: MarriedMentions(m1, m2) :- \
                 MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Sibling(e1, e2)."
            }
        };
        parse_rule(text)
            .expect("rule templates are well-formed")
            .with_semantics(semantics)
    }

    /// The [`KbcUpdate`] that adds this template's rule.
    pub fn update(self, semantics: Semantics) -> KbcUpdate {
        let mut u = KbcUpdate::new();
        match self {
            // A1 reads marginals; as an update it changes nothing.
            RuleTemplate::A1 => {}
            _ => {
                u.add_rule(self.rule(semantics));
            }
        }
        u
    }
}

/// A generated KBC system: program, loaded corpus, ground truth.
#[derive(Debug, Clone)]
pub struct KbcSystem {
    pub kind: SystemKind,
    pub corpus: Corpus,
    pub program: Program,
    pub semantics: Semantics,
}

impl KbcSystem {
    /// Generate a system at the given scale (1.0 ≈ a few hundred documents).
    pub fn generate(kind: SystemKind, scale: f64, seed: u64) -> KbcSystem {
        Self::generate_with_semantics(kind, scale, seed, Semantics::Ratio)
    }

    /// Generate with an explicit rule semantics (used by Figure 10(b)).
    pub fn generate_with_semantics(
        kind: SystemKind,
        scale: f64,
        seed: u64,
        semantics: Semantics,
    ) -> KbcSystem {
        let corpus = Corpus::generate(kind.corpus_config(scale, seed));
        KbcSystem {
            kind,
            corpus,
            program: Self::base_program(),
            semantics,
        }
    }

    /// The base program: relation declarations plus the candidate-mapping rule
    /// R1.  Features, supervision, and inference rules arrive as updates.
    pub fn base_program() -> Program {
        parse_program(
            r#"
            relation Sentence(s: int, content: text) base.
            relation PersonCandidate(s: int, m: int, t: text) base.
            relation EL(m: int, e: text) base.
            relation Married(e1: text, e2: text) base.
            relation Sibling(e1: text, e2: text) base.
            relation MarriedCandidate(m1: int, m2: int) derived.
            relation MarriedMentions(m1: int, m2: int) variable.

            rule R1 candidate:
              MarriedCandidate(m1, m2) :-
                PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.
            "#,
        )
        .expect("base program parses")
    }

    /// The ground-truth mention pairs.
    pub fn truth(&self) -> &HashSet<Tuple> {
        &self.corpus.truth
    }

    /// The development-iteration updates (Figure 10(a)'s six snapshots), in
    /// order, under this system's semantics.
    pub fn development_updates(&self) -> Vec<(RuleTemplate, KbcUpdate)> {
        RuleTemplate::development_order()
            .into_iter()
            .map(|t| (t, t.update(self.semantics)))
            .collect()
    }

    /// The update for one rule template under this system's semantics.
    pub fn template_update(&self, template: RuleTemplate) -> KbcUpdate {
        template.update(self.semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_grounding::RuleKind;

    #[test]
    fn paper_stats_match_figure_7() {
        let news = SystemKind::News.paper_stats();
        assert_eq!(news.documents, 1_800_000);
        assert_eq!(news.relations, 34);
        assert_eq!(news.rules, 22);
        assert_eq!(SystemKind::all().len(), 5);
        assert_eq!(SystemKind::Paleontology.name(), "Paleontology");
    }

    #[test]
    fn scaled_corpora_preserve_relative_sizes() {
        let sizes: Vec<usize> = SystemKind::all()
            .iter()
            .map(|k| k.corpus_config(1.0, 1).num_documents)
            .collect();
        // Adversarial (5M) > News (1.8M) > Pharma (0.6M) > Paleo (0.3M) > Genomics (0.2M)
        assert!(sizes[0] > sizes[1]);
        assert!(sizes[1] > sizes[3]);
        assert!(sizes[3] > sizes[4]);
        assert!(sizes[4] > sizes[2]);
    }

    #[test]
    fn adversarial_is_noisier_than_paleontology() {
        let adv = SystemKind::Adversarial.corpus_config(0.5, 1);
        let paleo = SystemKind::Paleontology.corpus_config(0.5, 1);
        assert!(adv.garble > paleo.garble);
        assert!(adv.noise > paleo.noise);
    }

    #[test]
    fn rule_templates_parse_and_classify() {
        for t in RuleTemplate::all() {
            let rule = t.rule(Semantics::Ratio);
            assert_eq!(rule.name, t.name());
            assert!(!t.description().is_empty());
        }
        assert_eq!(
            RuleTemplate::S2.rule(Semantics::Ratio).kind,
            RuleKind::Supervision
        );
        assert_eq!(
            RuleTemplate::I1.rule(Semantics::Logical).semantics,
            Semantics::Logical
        );
        // A1 is a no-op update
        assert!(RuleTemplate::A1.update(Semantics::Ratio).is_empty());
        assert!(!RuleTemplate::FE1.update(Semantics::Ratio).is_empty());
    }

    #[test]
    fn generated_system_is_consistent_with_its_program() {
        let sys = KbcSystem::generate(SystemKind::Genomics, 0.2, 9);
        assert!(sys.program.validate().is_ok());
        assert!(!sys.truth().is_empty());
        assert!(sys.corpus.database.table("Sentence").unwrap().len() >= 20);
        let updates = sys.development_updates();
        assert_eq!(updates.len(), 6);
        assert_eq!(updates[0].0, RuleTemplate::FE1);
        assert_eq!(updates[5].0, RuleTemplate::A1);
    }
}

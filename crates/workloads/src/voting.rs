//! The Voting program of Example 2.5 / Appendix A.
//!
//! A single query variable `q` receives "Up" and "Down" votes; under semantics
//! `g` the log-odds of `q` are `w·(g(|Up ∩ I|) − g(|Down ∩ I|))`.  Figure 13
//! measures how many Gibbs iterations are needed to estimate `P(q)` to within
//! 1 % as `|U| + |D|` grows, for each of the three semantics; Figure 12 gives the
//! corresponding theoretical bounds (Θ(n log n) for Logical/Ratio, exponential
//! for Linear).

use dd_factorgraph::{Factor, FactorGraph, FactorGraphBuilder, FactorKind, Lit, Semantics, VarId};

/// Build the voting factor graph.
///
/// * `num_up`, `num_down` — number of Up/Down vote variables; all vote variables
///   are non-evidence (the hardest case analysed in Appendix A).
/// * `weight` — the shared rule weight `w`.
/// * `semantics` — the `g` function.
///
/// Returns the graph and the id of the query variable `q`.
pub fn voting_graph(
    num_up: usize,
    num_down: usize,
    weight: f64,
    semantics: Semantics,
) -> (FactorGraph, VarId) {
    let mut b = FactorGraphBuilder::new();
    let q = b.add_query_variables(1)[0];
    let ups = b.add_query_variables(num_up);
    let downs = b.add_query_variables(num_down);
    let w_up = b.tied_weight("vote:up", weight, false);
    let w_down = b.tied_weight("vote:down", -weight, false);
    let mut graph = b.build();

    if num_up > 0 {
        graph.add_factor(Factor::new(
            w_up,
            FactorKind::Aggregate {
                head: Lit::pos(q),
                semantics,
                groundings: ups.iter().map(|&u| vec![Lit::pos(u)]).collect(),
            },
        ));
    }
    if num_down > 0 {
        graph.add_factor(Factor::new(
            w_down,
            FactorKind::Aggregate {
                head: Lit::pos(q),
                semantics,
                groundings: downs.iter().map(|&d| vec![Lit::pos(d)]).collect(),
            },
        ));
    }
    (graph, q)
}

/// The exact marginal of `q` when the votes are symmetric (|U| = |D| and no
/// evidence): by symmetry it is exactly 0.5 under every semantics — the target
/// Figure 13's convergence measurement uses.
pub fn symmetric_target() -> f64 {
    0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_inference::{GibbsOptions, GibbsSampler};

    #[test]
    fn builds_expected_structure() {
        let (g, q) = voting_graph(5, 3, 1.0, Semantics::Ratio);
        assert_eq!(q, 0);
        assert_eq!(g.num_variables(), 9);
        assert_eq!(g.num_factors(), 2);
        assert_eq!(g.num_weights(), 2);
    }

    #[test]
    fn symmetric_votes_give_half_probability() {
        for s in Semantics::all() {
            let (g, q) = voting_graph(3, 3, 1.0, s);
            let p = g.exact_marginal(q);
            assert!(
                (p - symmetric_target()).abs() < 1e-9,
                "{s:?}: expected 0.5, got {p}"
            );
        }
    }

    #[test]
    fn more_up_votes_raise_probability() {
        // With evidence-free votes the marginal of q still leans towards the
        // larger side because more worlds support it.
        let (g, q) = voting_graph(4, 1, 1.0, Semantics::Linear);
        assert!(g.exact_marginal(q) > 0.6);
        let (g2, q2) = voting_graph(1, 4, 1.0, Semantics::Linear);
        assert!(g2.exact_marginal(q2) < 0.4);
    }

    #[test]
    fn gibbs_estimates_the_symmetric_marginal() {
        let (g, q) = voting_graph(6, 6, 0.5, Semantics::Logical);
        let m = GibbsSampler::new(&g, 3).run(&GibbsOptions::new(3000, 300, 3));
        assert!((m.get(q) - 0.5).abs() < 0.06);
    }

    #[test]
    fn degenerate_vote_counts() {
        let (g, q) = voting_graph(0, 0, 1.0, Semantics::Ratio);
        assert_eq!(g.num_factors(), 0);
        assert!((g.exact_marginal(q) - 0.5).abs() < 1e-12);
    }
}

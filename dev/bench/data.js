window.BENCHMARK_DATA = {
  "lastUpdate": 1786249540803,
  "repoUrl": "unknown",
  "entries": {
    "DeepDive repro benches": [
      {
        "commit": {
          "id": "effaed514fc4c97cc668516c275750d22c332cf8",
          "message": "serving harness baseline",
          "timestamp": "1786249540803"
        },
        "date": 1786249540803,
        "tool": "customSmallerIsBetter",
        "benches": [
          {
            "name": "fig9_news_end_to_end/legacy_sequential",
            "unit": "sweeps/s",
            "value": 533052.829089
          },
          {
            "name": "fig9_news_end_to_end/flat_sequential",
            "unit": "sweeps/s",
            "value": 2794466.955428
          },
          {
            "name": "fig9_news_end_to_end/flat_parallel",
            "unit": "sweeps/s",
            "value": 2105144.974317
          },
          {
            "name": "fig9_news_end_to_end/flat_vs_legacy_speedup",
            "unit": "x",
            "value": 5.242383
          },
          {
            "name": "fig9_news_end_to_end/compile_seconds",
            "unit": "s",
            "value": 4.1e-5
          },
          {
            "name": "fig9_news_end_to_end/parallel_pooled_t2",
            "unit": "sweeps/s",
            "value": 267805.494655
          },
          {
            "name": "fig9_news_end_to_end/parallel_spawn_t2",
            "unit": "sweeps/s",
            "value": 52139.301615
          },
          {
            "name": "fig9_news_end_to_end/pooled_vs_spawn_speedup_t2",
            "unit": "x",
            "value": 5.136346
          },
          {
            "name": "fig9_news_end_to_end/parallel_pooled_t4",
            "unit": "sweeps/s",
            "value": 174729.969393
          },
          {
            "name": "fig9_news_end_to_end/parallel_spawn_t4",
            "unit": "sweeps/s",
            "value": 14871.981979
          },
          {
            "name": "fig9_news_end_to_end/pooled_vs_spawn_speedup_t4",
            "unit": "x",
            "value": 11.748936
          },
          {
            "name": "fig5_synthetic_pairwise/legacy_sequential",
            "unit": "sweeps/s",
            "value": 526.067998
          },
          {
            "name": "fig5_synthetic_pairwise/flat_sequential",
            "unit": "sweeps/s",
            "value": 1228.007008
          },
          {
            "name": "fig5_synthetic_pairwise/flat_parallel",
            "unit": "sweeps/s",
            "value": 1238.642592
          },
          {
            "name": "fig5_synthetic_pairwise/flat_vs_legacy_speedup",
            "unit": "x",
            "value": 2.334312
          },
          {
            "name": "fig5_synthetic_pairwise/compile_seconds",
            "unit": "s",
            "value": 0.001797
          },
          {
            "name": "fig5_synthetic_pairwise/parallel_pooled_t2",
            "unit": "sweeps/s",
            "value": 1236.942174
          },
          {
            "name": "fig5_synthetic_pairwise/parallel_spawn_t2",
            "unit": "sweeps/s",
            "value": 1170.725466
          },
          {
            "name": "fig5_synthetic_pairwise/pooled_vs_spawn_speedup_t2",
            "unit": "x",
            "value": 1.05656
          },
          {
            "name": "fig5_synthetic_pairwise/parallel_pooled_t4",
            "unit": "sweeps/s",
            "value": 1236.097534
          },
          {
            "name": "fig5_synthetic_pairwise/parallel_spawn_t4",
            "unit": "sweeps/s",
            "value": 1135.451327
          },
          {
            "name": "fig5_synthetic_pairwise/pooled_vs_spawn_speedup_t4",
            "unit": "x",
            "value": 1.08864
          },
          {
            "name": "publish_cost/full_rebuild_ms_n10000",
            "unit": "ms",
            "value": 1.418755
          },
          {
            "name": "publish_cost/sharded_publish_ms_n10000",
            "unit": "ms",
            "value": 0.035986
          },
          {
            "name": "publish_cost/publish_speedup_n10000",
            "unit": "x",
            "value": 39.425193
          },
          {
            "name": "publish_cost/full_rebuild_ms_n100000",
            "unit": "ms",
            "value": 27.087841
          },
          {
            "name": "publish_cost/sharded_publish_ms_n100000",
            "unit": "ms",
            "value": 0.287317
          },
          {
            "name": "publish_cost/publish_speedup_n100000",
            "unit": "x",
            "value": 94.278588
          },
          {
            "name": "publish_cost/full_rebuild_ms_n1000000",
            "unit": "ms",
            "value": 445.612249
          },
          {
            "name": "publish_cost/sharded_publish_ms_n1000000",
            "unit": "ms",
            "value": 5.630074
          },
          {
            "name": "publish_cost/publish_speedup_n1000000",
            "unit": "x",
            "value": 79.14856
          },
          {
            "name": "retraction_cost/rerun_delete_ms_n2000",
            "unit": "ms",
            "value": 6.142224
          },
          {
            "name": "retraction_cost/incremental_delete_ms_n2000",
            "unit": "ms",
            "value": 2.632606
          },
          {
            "name": "retraction_cost/delete_speedup_n2000",
            "unit": "x",
            "value": 2.333135
          },
          {
            "name": "retraction_cost/deletes_per_sec_n2000",
            "unit": "deletes/s",
            "value": 37985.175146
          },
          {
            "name": "retraction_cost/rerun_delete_ms_n8000",
            "unit": "ms",
            "value": 32.837045
          },
          {
            "name": "retraction_cost/incremental_delete_ms_n8000",
            "unit": "ms",
            "value": 16.102312
          },
          {
            "name": "retraction_cost/delete_speedup_n8000",
            "unit": "x",
            "value": 2.039275
          },
          {
            "name": "retraction_cost/deletes_per_sec_n8000",
            "unit": "deletes/s",
            "value": 24841.153246
          },
          {
            "name": "serving_server/point_read_p50_ms",
            "unit": "ms",
            "value": 0.762349
          },
          {
            "name": "serving_server/point_read_p90_ms",
            "unit": "ms",
            "value": 1.466019
          },
          {
            "name": "serving_server/point_read_p99_ms",
            "unit": "ms",
            "value": 4.655981
          },
          {
            "name": "serving_server/point_read_p999_ms",
            "unit": "ms",
            "value": 8.39632
          },
          {
            "name": "serving_server/point_read_ops",
            "unit": "ops",
            "value": 16250
          },
          {
            "name": "serving_server/topk_p50_ms",
            "unit": "ms",
            "value": 0.315003
          },
          {
            "name": "serving_server/topk_p90_ms",
            "unit": "ms",
            "value": 0.74763
          },
          {
            "name": "serving_server/topk_p99_ms",
            "unit": "ms",
            "value": 3.529833
          },
          {
            "name": "serving_server/topk_p999_ms",
            "unit": "ms",
            "value": 6.409273
          },
          {
            "name": "serving_server/topk_ops",
            "unit": "ops",
            "value": 16249
          },
          {
            "name": "serving_server/scan_p50_ms",
            "unit": "ms",
            "value": 0.458034
          },
          {
            "name": "serving_server/scan_p90_ms",
            "unit": "ms",
            "value": 0.893125
          },
          {
            "name": "serving_server/scan_p99_ms",
            "unit": "ms",
            "value": 3.491642
          },
          {
            "name": "serving_server/scan_p999_ms",
            "unit": "ms",
            "value": 7.212115
          },
          {
            "name": "serving_server/scan_ops",
            "unit": "ops",
            "value": 16249
          },
          {
            "name": "serving_server/open_mixed_p50_ms",
            "unit": "ms",
            "value": 0.776875
          },
          {
            "name": "serving_server/open_mixed_p90_ms",
            "unit": "ms",
            "value": 3.970316
          },
          {
            "name": "serving_server/open_mixed_p99_ms",
            "unit": "ms",
            "value": 12.811418
          },
          {
            "name": "serving_server/open_mixed_p999_ms",
            "unit": "ms",
            "value": 21.795787
          },
          {
            "name": "serving_server/open_mixed_ops",
            "unit": "ops",
            "value": 1602
          },
          {
            "name": "serving_server/update_round_p50_ms",
            "unit": "ms",
            "value": 15.993641
          },
          {
            "name": "serving_server/update_round_p99_ms",
            "unit": "ms",
            "value": 37.48696
          },
          {
            "name": "serving_server/update_rounds",
            "unit": "rounds",
            "value": 199
          },
          {
            "name": "serving_server/throughput_ops_per_sec",
            "unit": "ops/s",
            "value": 6293.504215059762
          },
          {
            "name": "serving_server/overload_rate",
            "unit": "fraction",
            "value": 0
          },
          {
            "name": "serving_server/retries_per_op",
            "unit": "retries/op",
            "value": 0
          },
          {
            "name": "serving_server/epoch_staleness_p50",
            "unit": "epochs",
            "value": 0
          },
          {
            "name": "serving_server/epoch_staleness_max",
            "unit": "epochs",
            "value": 2
          },
          {
            "name": "serving_server/unexpected_errors",
            "unit": "errors",
            "value": 0
          },
          {
            "name": "serving_server/server_mean_queue_wait_us",
            "unit": "us",
            "value": 47.81639604766634
          },
          {
            "name": "serving_server/server_mean_service_us",
            "unit": "us",
            "value": 14.087895193644489
          },
          {
            "name": "serving_server/shard_overload_rejections",
            "unit": "rejections",
            "value": 0
          },
          {
            "name": "serving_router/point_read_p50_ms",
            "unit": "ms",
            "value": 3.51755
          },
          {
            "name": "serving_router/point_read_p90_ms",
            "unit": "ms",
            "value": 6.191028
          },
          {
            "name": "serving_router/point_read_p99_ms",
            "unit": "ms",
            "value": 9.072672
          },
          {
            "name": "serving_router/point_read_p999_ms",
            "unit": "ms",
            "value": 12.160764
          },
          {
            "name": "serving_router/point_read_ops",
            "unit": "ops",
            "value": 2482
          },
          {
            "name": "serving_router/topk_p50_ms",
            "unit": "ms",
            "value": 3.240606
          },
          {
            "name": "serving_router/topk_p90_ms",
            "unit": "ms",
            "value": 5.754454
          },
          {
            "name": "serving_router/topk_p99_ms",
            "unit": "ms",
            "value": 8.916006
          },
          {
            "name": "serving_router/topk_p999_ms",
            "unit": "ms",
            "value": 15.563828
          },
          {
            "name": "serving_router/topk_ops",
            "unit": "ops",
            "value": 2483
          },
          {
            "name": "serving_router/scan_p50_ms",
            "unit": "ms",
            "value": 5.336697
          },
          {
            "name": "serving_router/scan_p90_ms",
            "unit": "ms",
            "value": 8.145565
          },
          {
            "name": "serving_router/scan_p99_ms",
            "unit": "ms",
            "value": 11.373475
          },
          {
            "name": "serving_router/scan_p999_ms",
            "unit": "ms",
            "value": 14.181608
          },
          {
            "name": "serving_router/scan_ops",
            "unit": "ops",
            "value": 2484
          },
          {
            "name": "serving_router/open_mixed_p50_ms",
            "unit": "ms",
            "value": 4.86367
          },
          {
            "name": "serving_router/open_mixed_p90_ms",
            "unit": "ms",
            "value": 8.016509
          },
          {
            "name": "serving_router/open_mixed_p99_ms",
            "unit": "ms",
            "value": 14.883009
          },
          {
            "name": "serving_router/open_mixed_p999_ms",
            "unit": "ms",
            "value": 48.462231
          },
          {
            "name": "serving_router/open_mixed_ops",
            "unit": "ops",
            "value": 1602
          },
          {
            "name": "serving_router/update_round_p50_ms",
            "unit": "ms",
            "value": 1.210455
          },
          {
            "name": "serving_router/update_round_p99_ms",
            "unit": "ms",
            "value": 11.896788
          },
          {
            "name": "serving_router/update_rounds",
            "unit": "rounds",
            "value": 283
          },
          {
            "name": "serving_router/throughput_ops_per_sec",
            "unit": "ops/s",
            "value": 1131.1972783026042
          },
          {
            "name": "serving_router/overload_rate",
            "unit": "fraction",
            "value": 0
          },
          {
            "name": "serving_router/retries_per_op",
            "unit": "retries/op",
            "value": 0
          },
          {
            "name": "serving_router/epoch_staleness_p50",
            "unit": "epochs",
            "value": 0
          },
          {
            "name": "serving_router/epoch_staleness_max",
            "unit": "epochs",
            "value": 2
          },
          {
            "name": "serving_router/unexpected_errors",
            "unit": "errors",
            "value": 0
          },
          {
            "name": "serving_router/server_mean_queue_wait_us",
            "unit": "us",
            "value": 136.9562359699514
          },
          {
            "name": "serving_router/server_mean_service_us",
            "unit": "us",
            "value": 15.012331013404037
          },
          {
            "name": "serving_router/shard_overload_rejections",
            "unit": "rejections",
            "value": 0
          },
          {
            "name": "serving_router/front_batches_served",
            "unit": "batches",
            "value": 9051
          },
          {
            "name": "serving_router/front_overload_rejections",
            "unit": "rejections",
            "value": 0
          }
        ]
      }
    ]
  }
};

//! Durability: persist an engine, kill it, and recover it.
//!
//! Opens a data directory with [`DeepDiveBuilder::durability`], runs the
//! HasSpouse program through an initial run, a materialization, and an
//! incremental update (each appended to the write-ahead log before it
//! executes), rolls the log into a checkpoint — then drops the engine on the
//! floor and reopens the directory, proving the recovered engine serves the
//! same epoch and the same marginals, supervised facts pinned and all.
//!
//! Run with `cargo run --release --example durability`.

use deepdive_repro::prelude::*;
use std::path::Path;

const PROGRAM: &str = r#"
    relation Sentence(s: int, content: text) base.
    relation PersonCandidate(s: int, m: int, t: text) base.
    relation EL(m: int, e: text) base.
    relation Married(e1: text, e2: text) base.
    relation MarriedCandidate(m1: int, m2: int) derived.
    relation MarriedMentions(m1: int, m2: int) variable.

    rule R1 candidate:
      MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

    rule FE1 feature:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
        Sentence(s, content)
      weight = phrase(t1, t2, content).

    rule S1 supervision+:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"#;

fn database() -> Result<Database, RelError> {
    let mut db = Database::new();
    db.create_table(
        "Sentence",
        Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
    )?;
    db.create_table(
        "PersonCandidate",
        Schema::of(&[
            ("s", DataType::Int),
            ("m", DataType::Int),
            ("t", DataType::Text),
        ]),
    )?;
    db.create_table(
        "EL",
        Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
    )?;
    db.create_table(
        "Married",
        Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
    )?;
    db.insert_all(
        "Sentence",
        vec![
            Tuple::from_iter([
                Value::Int(1),
                Value::text("Barack and his wife Michelle attended the dinner"),
            ]),
            Tuple::from_iter([
                Value::Int(2),
                Value::text("George and his wife Laura were married"),
            ]),
        ],
    )?;
    db.insert_all(
        "PersonCandidate",
        vec![
            Tuple::from_iter([Value::Int(1), Value::Int(10), Value::text("Barack")]),
            Tuple::from_iter([Value::Int(1), Value::Int(11), Value::text("Michelle")]),
            Tuple::from_iter([Value::Int(2), Value::Int(20), Value::text("George")]),
            Tuple::from_iter([Value::Int(2), Value::Int(21), Value::text("Laura")]),
        ],
    )?;
    db.insert_all(
        "EL",
        vec![
            Tuple::from_iter([Value::Int(10), Value::text("Barack_Obama_1")]),
            Tuple::from_iter([Value::Int(11), Value::text("Michelle_Obama_1")]),
        ],
    )?;
    db.insert_all(
        "Married",
        vec![Tuple::from_iter([
            Value::text("Barack_Obama_1"),
            Value::text("Michelle_Obama_1"),
        ])],
    )?;
    Ok(db)
}

fn open(dir: &Path) -> Result<DeepDive, EngineError> {
    DeepDive::builder()
        .program_text(PROGRAM)
        .database(database().expect("example database"))
        .config(EngineConfig::fast())
        // Fsync on every append is the safe default; EveryN(64) or Never
        // trade durability of the newest operations for throughput.
        .durability(DurabilityConfig::new(dir).fsync(FsyncPolicy::Always))
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("deepdive-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- First life: build, run, update, checkpoint -------------------------
    let (epoch_before, probe) = {
        let mut dd = open(&dir)?;
        dd.initial_run()?;
        dd.materialize()?;

        // Incremental evidence: the KB learns George and Laura are married.
        let mut update = KbcUpdate::new();
        update
            .insert(
                "EL",
                Tuple::from_iter([Value::Int(20), Value::text("George_Bush_1")]),
            )
            .insert(
                "EL",
                Tuple::from_iter([Value::Int(21), Value::text("Laura_Bush_1")]),
            )
            .insert(
                "Married",
                Tuple::from_iter([Value::text("George_Bush_1"), Value::text("Laura_Bush_1")]),
            );
        dd.run_update(&update, ExecutionMode::Incremental)?;

        // Roll the three WAL records into a compact checkpoint; recovery now
        // loads the checkpoint instead of replaying from scratch.
        let covered = dd.checkpoint()?;
        println!(
            "first life : epoch {}, WAL sequence {:?}, checkpoint covers {}",
            dd.epoch(),
            dd.last_wal_seq(),
            covered
        );

        let probe = Tuple::from_iter([Value::Int(20), Value::Int(21)]);
        let p = dd.snapshot().probability_of("MarriedMentions", &probe);
        println!("first life : P(MarriedMentions(20, 21)) = {p:?}");
        (dd.epoch(), probe)
        // `dd` dropped here — no graceful shutdown hook exists or is needed.
    };

    // ---- Second life: same directory, recovered state ----------------------
    let recovered = open(&dir)?;
    let p = recovered
        .snapshot()
        .probability_of("MarriedMentions", &probe);
    println!(
        "second life: epoch {} (was {}), P(MarriedMentions(20, 21)) = {p:?}",
        recovered.epoch(),
        epoch_before
    );
    assert_eq!(recovered.epoch(), epoch_before);
    assert_eq!(p, Some(1.0), "supervised fact must survive recovery pinned");

    let _ = std::fs::remove_dir_all(&dir);
    println!("recovered state matches the pre-crash state exactly");
    Ok(())
}

//! The engineering-in-the-loop development cycle of Figure 1, incrementally.
//!
//! Generates the scaled-down News system, runs the initial pipeline, materializes
//! the factor graph, and then applies the six rule-template iterations
//! (FE1, FE2, S1, S2, I1, A1) both from scratch (Rerun) and incrementally,
//! reporting the per-iteration time and F1 — a miniature of Figures 9 and 10(a).
//!
//! Run with `cargo run --release --example incremental_development`.

use deepdive_repro::prelude::*;

fn main() -> Result<(), EngineError> {
    let system = KbcSystem::generate(SystemKind::News, 0.25, 7);

    for mode in [ExecutionMode::Rerun, ExecutionMode::Incremental] {
        println!("== {} ==", mode.label());
        let mut engine = DeepDive::builder()
            .program(system.program.clone())
            .database(system.corpus.database.clone())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .build()?;
        engine.initial_run()?;
        if mode == ExecutionMode::Incremental {
            engine.materialize().unwrap();
            println!(
                "materialized {} samples in {:.2}s",
                engine.materialization().unwrap().num_samples,
                engine.materialization().unwrap().seconds
            );
        }
        let mut cumulative = 0.0;
        for (template, update) in system.development_updates() {
            let report = engine.run_update(&update, mode)?;
            cumulative += report.inference_and_learning_secs();
            let quality = engine.quality("MarriedMentions", system.truth());
            println!(
                "  {:<4} strategy={:<12} learn+infer={:>8.3}s cumulative={:>8.3}s F1={:.3}",
                template.name(),
                report
                    .strategy
                    .map(|s| s.label().to_string())
                    .unwrap_or_else(|| "full".into()),
                report.inference_and_learning_secs(),
                cumulative,
                quality.f1,
            );
        }
        println!();
    }
    Ok(())
}

//! Quickstart: build a tiny KBC system end to end.
//!
//! Declares the paper's running example (the HasSpouse extraction of Figure 2)
//! as a DeepDive program, loads a handful of documents, runs grounding, learning
//! and inference, and prints the extracted facts with their marginal
//! probabilities.
//!
//! Run with `cargo run --release --example quickstart`.

use deepdive_repro::prelude::*;

const PROGRAM: &str = r#"
    relation Sentence(s: int, content: text) base.
    relation PersonCandidate(s: int, m: int, t: text) base.
    relation EL(m: int, e: text) base.
    relation Married(e1: text, e2: text) base.
    relation MarriedCandidate(m1: int, m2: int) derived.
    relation MarriedMentions(m1: int, m2: int) variable.

    # R1: every pair of person mentions in the same sentence is a candidate.
    rule R1 candidate:
      MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

    # FE1: the phrase between the two mentions is a tied-weight feature.
    rule FE1 feature:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
        Sentence(s, content)
      weight = phrase(t1, t2, content).

    # S1: distant supervision from an (incomplete) KB of married couples.
    rule S1 supervision+:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the input data.
    let mut db = Database::new();
    db.create_table(
        "Sentence",
        Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
    )?;
    db.create_table(
        "PersonCandidate",
        Schema::of(&[
            ("s", DataType::Int),
            ("m", DataType::Int),
            ("t", DataType::Text),
        ]),
    )?;
    db.create_table(
        "EL",
        Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
    )?;
    db.create_table(
        "Married",
        Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
    )?;

    let documents = [
        (
            1i64,
            "Barack",
            "Michelle",
            "Barack and his wife Michelle attended the dinner",
        ),
        (
            2,
            "George",
            "Laura",
            "George and his wife Laura were married",
        ),
        (
            3,
            "Malia",
            "Sasha",
            "Malia and Sasha attended the state dinner",
        ),
        (
            4,
            "Franklin",
            "Eleanor",
            "Franklin and his wife Eleanor hosted the gala",
        ),
    ];
    for (s, p1, p2, content) in documents {
        db.insert(
            "Sentence",
            Tuple::from_iter([Value::Int(s), Value::text(content)]),
        )?;
        db.insert(
            "PersonCandidate",
            Tuple::from_iter([Value::Int(s), Value::Int(2 * s), Value::text(p1)]),
        )?;
        db.insert(
            "PersonCandidate",
            Tuple::from_iter([Value::Int(s), Value::Int(2 * s + 1), Value::text(p2)]),
        )?;
    }
    // The existing KB knows only about the Obamas; everything else must be learned.
    db.insert(
        "EL",
        Tuple::from_iter([Value::Int(2), Value::text("Barack_Obama")]),
    )?;
    db.insert(
        "EL",
        Tuple::from_iter([Value::Int(3), Value::text("Michelle_Obama")]),
    )?;
    db.insert(
        "Married",
        Tuple::from_iter([Value::text("Barack_Obama"), Value::text("Michelle_Obama")]),
    )?;

    // 2. Build and run the engine.  Misconfiguration (bad program text, schema
    // conflicts, unknown UDFs) is a typed `EngineError` at build time.
    let mut engine = DeepDive::builder()
        .program_text(PROGRAM)
        .database(db)
        .udfs(standard_udfs())
        .config(EngineConfig::default())
        .build()?;
    let report = engine.initial_run()?;
    println!(
        "grounded {} variables / {} factors in {:.2}s; learning {:.2}s; inference {:.2}s\n",
        report.new_variables,
        report.new_factors,
        report.grounding_secs,
        report.learning_secs,
        report.inference_secs
    );

    // 3. Inspect the output KB through an immutable snapshot of this epoch.
    let snapshot = engine.snapshot();
    println!("epoch {} — candidate pair P(married)", snapshot.epoch());
    for (tuple, p) in snapshot.facts("MarriedMentions").run() {
        println!("{tuple:<24} {p:.3}");
    }
    Ok(())
}

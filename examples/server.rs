//! Snapshot serving over a real TCP socket, during live incremental updates.
//!
//! This is `examples/serving.rs` taken across the process boundary: the
//! engine runs its initial pass, a [`Server`] binds an ephemeral port over
//! the engine's [`SnapshotReader`], and client threads — each holding its own
//! TCP connection — page through facts with batched queries *while* the main
//! thread applies incremental updates.  Every batch answers from one pinned
//! epoch, so the per-batch cross-checks (supervised fact at 1.0, top-k
//! agreeing with the full scan) hold even mid-publish; clients that hit the
//! bounded queue's backpressure get a typed `overloaded` refusal and retry.
//!
//! Run with `cargo run --release --example server`.

use deepdive_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

const CLIENTS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = KbcSystem::generate(SystemKind::News, 0.25, 7);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()?;
    engine.initial_run()?;
    engine.materialize().unwrap();

    let server = Server::bind(
        "127.0.0.1:0",
        engine.reader(),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!(
        "serving epoch {} on {addr} ({} catalogued variables)",
        engine.epoch(),
        engine.snapshot().num_catalogued_variables()
    );

    let stop = AtomicBool::new(false);
    let batches = AtomicU64::new(0);
    let overloads = AtomicU64::new(0);

    let updates = system.development_updates();
    thread::scope(|scope| {
        // Client threads: real sockets, batched reads, typed backpressure.
        for worker in 0..CLIENTS {
            let (stop, batches, overloads) = (&stop, &batches, &overloads);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut last_epoch = 0;
                while !stop.load(Ordering::Relaxed) {
                    let ops = vec![
                        Op::query(
                            "MarriedMentions",
                            FactQuerySpec {
                                min_probability: 0.5,
                                top_k: Some(10),
                                offset: worker,
                                limit: Some(3),
                            },
                        ),
                        Op::Stats,
                    ];
                    match client.batch(ops) {
                        Ok(batch) => {
                            if batch.epoch != last_epoch {
                                println!(
                                    "  client {worker}: now reading epoch {} over the wire",
                                    batch.epoch
                                );
                                last_epoch = batch.epoch;
                            }
                            if let OpResult::Facts(page) = &batch.results[0] {
                                // One pinned snapshot per batch ⇒ the page is
                                // internally consistent by construction.
                                assert!(page.iter().all(|(_, p)| (0.5..=1.0).contains(p)));
                            }
                            batches.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) if err.is_overloaded() => {
                            // Typed backpressure: back off and retry.
                            overloads.fetch_add(1, Ordering::Relaxed);
                            thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(err) => panic!("client {worker} failed: {err}"),
                    }
                }
            });
        }

        // The writer: incremental updates land while the sockets stay hot.
        for (template, update) in &updates {
            let report = engine
                .run_update(update, ExecutionMode::Incremental)
                .expect("update applies");
            println!(
                "writer: {} applied -> epoch {} ({} new vars, {:.3}s learn+infer)",
                template.name(),
                engine.epoch(),
                report.new_variables,
                report.inference_and_learning_secs()
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = server.stats();
    println!(
        "served {} batches over {} connections ({} overload refusals, {} malformed frames)",
        stats.batches_served,
        stats.connections_accepted,
        stats.overload_rejections,
        stats.malformed_frames
    );

    // A last fresh client reads the final extractions through the socket.
    let mut client = Client::connect(addr)?;
    let facts = client.query(
        "MarriedMentions",
        FactQuerySpec {
            top_k: Some(3),
            ..FactQuerySpec::default()
        },
    )?;
    println!("final top extractions at epoch {}:", client.epoch()?);
    for (tuple, p) in facts {
        println!("  {tuple:<24} {p:.3}");
    }
    server.shutdown();
    Ok(())
}

//! Multi-threaded query serving during an incremental update.
//!
//! The paper's system is an online KBC service: the knowledge base keeps
//! answering queries while new documents land (§1, §3.3).  This example builds
//! the News system, takes the initial run, and then serves reads from several
//! threads *while* the engine executes an incremental update on the main
//! thread.  Each reader holds a [`SnapshotReader`] handle; every snapshot it
//! pulls is an immutable epoch — readers never block on (or observe a torn
//! state of) the update running next to them.
//!
//! Run with `cargo run --release --example serving`.

use deepdive_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

const READERS: usize = 4;

fn main() -> Result<(), EngineError> {
    let system = KbcSystem::generate(SystemKind::News, 0.25, 7);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()?;
    engine.initial_run()?;
    engine.materialize().unwrap();
    println!(
        "initial run published epoch {} ({} catalogued variables)",
        engine.epoch(),
        engine.snapshot().num_catalogued_variables()
    );

    let reader = engine.reader();
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);

    let updates = system.development_updates();
    thread::scope(|scope| {
        // Serving threads: page through the fact table of whatever epoch is
        // current, as fast as they can, until the writer is done.
        for worker in 0..READERS {
            let reader = reader.clone();
            let (stop, queries) = (&stop, &queries);
            scope.spawn(move || {
                let mut last_epoch = 0;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    if snap.epoch() != last_epoch {
                        println!("  reader {worker}: now serving epoch {}", snap.epoch());
                        last_epoch = snap.epoch();
                    }
                    // A paginated fact query against this epoch.
                    let page = snap
                        .facts("MarriedMentions")
                        .min_probability(0.5)
                        .top_k(10)
                        .offset(worker)
                        .limit(3)
                        .run();
                    // Every fact on the page belongs to the same epoch, so the
                    // probabilities are mutually consistent by construction.
                    assert!(page.iter().all(|(_, p)| (0.5..=1.0).contains(p)));
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The writer: apply the development iterations incrementally while the
        // readers keep serving.
        for (template, update) in &updates {
            let report = engine
                .run_update(update, ExecutionMode::Incremental)
                .expect("update applies");
            println!(
                "writer: {} applied -> epoch {} ({} new vars, {:.3}s learn+infer)",
                template.name(),
                engine.epoch(),
                report.new_variables,
                report.inference_and_learning_secs()
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    let final_snap = engine.snapshot();
    println!(
        "served {} queries across {} epochs; final top extraction:",
        queries.load(Ordering::Relaxed),
        final_snap.epoch()
    );
    for (tuple, p) in final_snap.facts("MarriedMentions").top_k(3).run() {
        println!("  {tuple:<24} {p:.3}");
    }
    Ok(())
}

//! Sharded serving: one logical KB over four engines, behind one front door.
//!
//! The paper's KBC service is a single engine; this example scales it out.
//! The corpus is hash-partitioned on its document id across four DeepDive
//! engines, each with its own server, and a scatter-gather router serves the
//! union over the ordinary wire protocol.  Readers hammer the front door
//! while single-document updates land on individual shards — each batch
//! reports the cross-shard epoch vector it was read from, and only the
//! updated shard's entry ever advances.
//!
//! Every claim carries an exact supervision label, so marginals are exactly
//! 1.0 or 0.0 and the example can end with the sharpest check there is: the
//! cluster's answer is byte-identical to a single unsharded engine fed the
//! same data.
//!
//! Run with `cargo run --release --example sharded_serving`.

use deepdive_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

const SHARDS: usize = 4;
const DOCS: i64 = 10;
const IDS_PER_DOC: i64 = 5;
const READERS: usize = 3;

const PROGRAM: &str = "\
    relation Claim(doc: int, id: int) base.\n\
    relation Pos(doc: int, id: int) base.\n\
    relation Neg(doc: int, id: int) base.\n\
    relation Fact(doc: int, id: int) variable.\n\
    rule F feature: Fact(doc, id) :- Claim(doc, id) weight = 1.5.\n\
    rule SP supervision+: Fact(doc, id) :- Claim(doc, id), Pos(doc, id).\n\
    rule SN supervision-: Fact(doc, id) :- Claim(doc, id), Neg(doc, id).\n";

/// Insert one labelled claim (even ids are true, odd ids are false).
fn add_claim(update: &mut KbcUpdate, doc: i64, id: i64) {
    update.insert("Claim", Tuple::from_iter([Value::Int(doc), Value::Int(id)]));
    let label = if id % 2 == 0 { "Pos" } else { "Neg" };
    update.insert(label, Tuple::from_iter([Value::Int(doc), Value::Int(id)]));
}

fn corpus() -> Database {
    let mut db = Database::new();
    let schema = || Schema::of(&[("doc", DataType::Int), ("id", DataType::Int)]);
    for table in ["Claim", "Pos", "Neg"] {
        db.create_table(table, schema()).expect("fresh table");
    }
    let mut seed = KbcUpdate::new();
    for doc in 0..DOCS {
        for id in 0..IDS_PER_DOC {
            add_claim(&mut seed, doc, id);
        }
    }
    for (relation, delta) in &seed.base_deltas {
        for (tuple, _) in delta.iter() {
            db.insert(relation, tuple.clone()).expect("seed row");
        }
    }
    db
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the cluster: four engines, four servers, one front door ---------
    let mut config = ClusterConfig::new(SHARDS);
    config.engine = EngineConfig::fast();
    let cluster = Cluster::build(PROGRAM, &corpus(), &standard_udfs(), &config)?;
    cluster.initial_run()?;
    println!("cluster up: epochs {:?}", cluster.epochs());

    let front = cluster.serve_front(
        "127.0.0.1:0",
        RouterConfig::default(),
        ServerConfig::default(),
        READERS,
    )?;
    println!("front door: {}", front.local_addr());

    // --- readers vs. writer ---------------------------------------------
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        for _ in 0..READERS {
            let addr = front.local_addr();
            let (stop, queries) = (&stop, &queries);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect front door");
                while !stop.load(Ordering::Relaxed) {
                    let batch = client
                        .batch(vec![
                            Op::Query {
                                relation: "Fact".to_string(),
                                spec: FactQuerySpec {
                                    min_probability: 0.5,
                                    top_k: Some(5),
                                    offset: 0,
                                    limit: None,
                                },
                            },
                            Op::Stats,
                        ])
                        .expect("routed reads never hang or panic");
                    // Every batch names the exact shard epochs it read from.
                    let epochs = batch.epochs.expect("front door reports the vector");
                    assert_eq!(epochs.len(), SHARDS);
                    assert!(epochs.iter().all(|e| e.is_some()), "broadcast consults all");
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Writer: one new document at a time; each lands on one shard.
        for doc in DOCS..DOCS + 6 {
            let mut update = KbcUpdate::new();
            for id in 0..IDS_PER_DOC {
                add_claim(&mut update, doc, id);
            }
            let touched: Vec<usize> = cluster
                .run_update(&update, ExecutionMode::Incremental)?
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|_| i))
                .collect();
            println!(
                "doc {doc} -> shard(s) {touched:?}; epochs now {:?}",
                cluster.epochs()
            );
            assert_eq!(touched.len(), 1, "one document lives on one shard");
        }
        // Updates can outrun the readers' connects on a fast machine; keep
        // serving until every reader has proven at least one routed batch.
        while queries.load(Ordering::Relaxed) < READERS as u64 {
            thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;
    println!(
        "served {} routed batches during the updates",
        queries.load(Ordering::Relaxed)
    );

    // --- the differential check: cluster == one big engine ---------------
    let mut reference = DeepDive::builder()
        .program_text(PROGRAM)
        .database(corpus())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()?;
    reference.initial_run()?;
    for doc in DOCS..DOCS + 6 {
        let mut update = KbcUpdate::new();
        for id in 0..IDS_PER_DOC {
            add_claim(&mut update, doc, id);
        }
        reference.run_update(&update, ExecutionMode::Incremental)?;
    }
    let expected: Vec<(String, Tuple, f64)> = reference
        .snapshot()
        .all_facts(0.5, 0, usize::MAX)
        .into_iter()
        .map(|(r, t, p)| (r.to_string(), t, p))
        .collect();

    let mut router = cluster.router(RouterConfig::default())?;
    let routed = router.batch(&[Op::AllFacts {
        min_probability: 0.5,
        offset: 0,
        limit: 1_000_000,
    }])?;
    let OpResult::AllFacts(got) = &routed.results[0] else {
        panic!("all_facts merges into all_facts");
    };
    assert_eq!(got, &expected, "sharded answers must be byte-identical");
    println!(
        "differential check: {} facts identical across {} shards (epoch vector {:?})",
        got.len(),
        SHARDS,
        routed.epochs
    );

    front.shutdown();
    Ok(())
}

//! Explore the incremental-inference tradeoff space (paper §3.2.4) by hand.
//!
//! Builds a synthetic pairwise factor graph, materializes it with both the
//! sampling and the variational strategies, applies distribution changes of
//! increasing magnitude, and prints which strategy the rule-based optimizer
//! picks along with the measured acceptance rate and marginal error of each.
//!
//! Run with `cargo run --release --example tradeoff_explorer`.

use deepdive_repro::engine::choose_strategy;
use deepdive_repro::inference::{
    DistributionChange, GibbsOptions, GibbsSampler, SampleMaterialization,
    VariationalMaterialization, VariationalOptions,
};
use deepdive_repro::workloads::{pairwise_graph, weight_perturbation, SyntheticConfig};

fn main() {
    let graph = pairwise_graph(&SyntheticConfig {
        num_variables: 120,
        sparsity: 0.5,
        seed: 19,
        ..Default::default()
    });
    println!(
        "synthetic graph: {} variables, {} factors",
        graph.num_variables(),
        graph.num_factors()
    );

    let sampling = SampleMaterialization::materialize(&graph, 1500, 100, 1);
    let variational = VariationalMaterialization::materialize(
        &graph,
        &VariationalOptions {
            num_samples: 400,
            lambda: 0.01,
            exact_solver_max_vars: 0,
            ..Default::default()
        },
    );
    println!(
        "materialized {} samples and an approximate graph with {} pairwise factors\n",
        sampling.num_samples(),
        variational.num_pairwise_factors()
    );

    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "change", "optimizer", "acceptance", "samp. err", "var. err", "rerun err"
    );
    for &magnitude in &[0.0f64, 0.1, 0.5, 2.0] {
        let delta = weight_perturbation(&graph, 0.5, magnitude, 5);
        let mut updated = graph.clone();
        let change = DistributionChange::apply_and_describe(&mut updated, &delta);

        // Reference answer: a long Gibbs run on the updated graph.
        let reference = GibbsSampler::new(&updated, 2).run(&GibbsOptions::new(2000, 200, 2));

        let choice = choose_strategy(&change, sampling.num_samples());
        let mh = sampling.infer(&updated, &change, 1000, 3);
        let var = variational.infer(&delta, &GibbsOptions::new(300, 50, 3));
        let rerun = GibbsSampler::new(&updated, 4).run(&GibbsOptions::new(300, 50, 4));

        println!(
            "{:>12.2} {:>12} {:>12.2} {:>12.3} {:>12.3} {:>12.3}",
            magnitude,
            choice.label(),
            mh.acceptance_rate,
            mh.marginals.mean_abs_diff(&reference),
            var.mean_abs_diff(&reference),
            rerun.mean_abs_diff(&reference),
        );
    }
    println!(
        "\nSmall changes keep the acceptance rate high (sampling wins); large changes\n\
         collapse it, and the variational approximation becomes the better choice —\n\
         the tradeoff the rule-based optimizer of §3.3 encodes."
    );
}

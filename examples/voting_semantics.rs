//! Example 2.5: the Voting program and the three rule semantics.
//!
//! Shows how the Linear, Ratio, and Logical semantics (Figure 4) change the
//! probability of a fact supported by conflicting evidence, and how they change
//! Gibbs-sampling convergence (the phenomenon behind Figures 12–13).
//!
//! Run with `cargo run --release --example voting_semantics`.

use deepdive_repro::inference::{iterations_to_converge, GibbsOptions, GibbsSampler};
use deepdive_repro::prelude::*;
use deepdive_repro::workloads::voting_graph;

fn main() {
    // "Barack Obama is born in Hawaii" has 1,000 supporting mentions and 900
    // contradicting ones (scaled down from the paper's 10^6).
    println!("probability of q with 1000 up-votes and 900 down-votes:");
    for semantics in [Semantics::Linear, Semantics::Ratio, Semantics::Logical] {
        let w = semantics.g(1000) - semantics.g(900);
        let p = w.exp() / (w.exp() + (-w).exp());
        println!("  {:<8} -> {:.4}", semantics.label(), p);
    }
    println!(
        "\nLinear saturates to ~1 (raw counts matter), Ratio stays near 0.5 (only the\n\
         ratio matters), Logical is exactly 0.5 (only existence matters).\n"
    );

    // Convergence: how many sweeps until the estimate of P(q) is within 2%.
    println!("Gibbs sweeps to estimate P(q) within 2% (|U| = |D| = n):");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "n", "Logical", "Ratio", "Linear"
    );
    for &n in &[10usize, 50, 200] {
        let mut cells = vec![format!("{n:>8}")];
        for semantics in [Semantics::Logical, Semantics::Ratio, Semantics::Linear] {
            let (graph, q) = voting_graph(n, n, 0.5, semantics);
            let report = iterations_to_converge(&graph, q, 0.5, 0.02, 50_000, 100, 11);
            cells.push(format!(
                "{:>10}",
                if report.converged {
                    report.sweeps_to_converge.to_string()
                } else {
                    ">50000".to_string()
                }
            ));
        }
        println!("{}", cells.join(" "));
    }

    // The same voting graph can also be queried for marginals directly.
    let (graph, q) = voting_graph(20, 5, 0.5, Semantics::Ratio);
    let marginals = GibbsSampler::new(&graph, 1).run(&GibbsOptions::new(2000, 200, 1));
    println!(
        "\nwith 20 up-votes and 5 down-votes under Ratio semantics, P(q) ≈ {:.3}",
        marginals.get(q)
    );
}

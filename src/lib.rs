//! # deepdive-repro — umbrella crate
//!
//! A from-scratch Rust reproduction of *Incremental Knowledge Base Construction
//! Using DeepDive* (Shin et al., VLDB 2015).  This umbrella crate re-exports the
//! workspace's public API so examples, integration tests, and downstream users
//! can depend on a single crate:
//!
//! * [`relstore`] — the in-memory relational substrate with DRed view maintenance;
//! * [`factorgraph`] — factor graphs with Linear/Ratio/Logical rule semantics;
//! * [`inference`] — Gibbs sampling, learning, and the three incremental-inference
//!   materialization strategies;
//! * [`grounding`] — the DeepDive rule language, grounding, and incremental
//!   grounding;
//! * [`engine`] — the end-to-end engine: builder construction, typed
//!   [`engine::EngineError`]s, Rerun vs Incremental execution, and lock-free
//!   [`engine::Snapshot`] reads for multi-threaded serving;
//! * [`workloads`] — synthetic corpora, the five KBC systems, the Voting program,
//!   and the tradeoff-study graphs;
//! * [`wire`] — the offline wire format: hand-rolled JSON and length-prefixed
//!   framing, shared by the server and the bench tooling;
//! * [`storage`] — durable persistence: a CRC-checked write-ahead log,
//!   atomically-rotated checkpoint files, and the crash-recovery machinery
//!   behind [`engine::DeepDiveBuilder::durability`];
//! * [`server`] — the TCP front door: batched snapshot reads over a
//!   length-prefixed JSON protocol with bounded-queue backpressure, plus the
//!   blocking [`server::Client`];
//! * [`router`] — multi-engine KB sharding: a cluster of engines partitioned
//!   under a [`engine::ShardAssignment`], presented as one logical KB by a
//!   scatter-gather router with cross-shard epoch vectors and typed
//!   degradation.
//!
//! See `README.md` for a quickstart and `ARCHITECTURE.md` for the
//! paper-to-module map.

pub use dd_factorgraph as factorgraph;
pub use dd_grounding as grounding;
pub use dd_inference as inference;
pub use dd_relstore as relstore;
pub use dd_router as router;
pub use dd_server as server;
pub use dd_storage as storage;
pub use dd_wire as wire;
pub use dd_workloads as workloads;
pub use deepdive as engine;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dd_factorgraph::{Factor, FactorGraph, FactorGraphBuilder, GraphDelta, Semantics};
    pub use dd_grounding::{
        parse_program, standard_udfs, Grounder, GroundingError, KbcUpdate, Program, ProgramError,
    };
    pub use dd_inference::{GibbsOptions, GibbsSampler, LearnOptions, Learner, Marginals};
    pub use dd_relstore::{DataType, Database, RelError, Schema, Tuple, Value};
    pub use dd_router::{
        Cluster, ClusterConfig, ClusterError, Router, RouterBatch, RouterConfig, RouterError,
        RouterHandler,
    };
    pub use dd_server::{
        Client, ClientConfig, ClientError, FactQuerySpec, Op, OpResult, RetryPolicy, Server,
        ServerConfig, ServerStats,
    };
    pub use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
    pub use deepdive::{
        decode_snapshot, encode_snapshot, CatalogShard, CatalogShards, DeepDive, DeepDiveBuilder,
        DurabilityConfig, EngineConfig, EngineError, ExecutionMode, FactQuery, FsyncPolicy,
        RankedIndex, RelationIndex, ShardAssignment, ShardingError, Snapshot, SnapshotReader,
        StorageError, StrategyChoice,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let config = EngineConfig::fast();
        assert!(config.fact_threshold > 0.0);
        let _ = Semantics::Ratio;
    }
}

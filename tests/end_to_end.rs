//! Cross-crate integration tests: the full pipeline from corpus generation
//! through grounding, learning, inference, and incremental updates.

use deepdive_repro::prelude::*;
use std::collections::HashSet;

fn news(scale: f64, seed: u64) -> (KbcSystem, DeepDive) {
    let system = KbcSystem::generate(SystemKind::News, scale, seed);
    let engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    (system, engine)
}

#[test]
fn development_loop_improves_quality() {
    let (system, mut engine) = news(0.2, 3);
    engine.initial_run().expect("initial run");
    let before = engine.quality("MarriedMentions", system.truth());

    for (_, update) in system.development_updates() {
        engine
            .run_update(&update, ExecutionMode::Rerun)
            .expect("update applies");
    }
    let after = engine.quality("MarriedMentions", system.truth());
    assert!(
        after.f1 > before.f1,
        "adding features and supervision should raise F1 ({} -> {})",
        before.f1,
        after.f1
    );
    assert!(
        after.f1 > 0.2,
        "final F1 should be non-trivial, got {}",
        after.f1
    );
}

#[test]
fn incremental_and_rerun_extract_similar_high_confidence_facts() {
    // Both engines are brought to the same trained state (FE1 + S1) before the
    // materialization is taken — the paper's workflow: materialize once the
    // system exists, then iterate.
    let (system, mut incremental) = news(0.2, 5);
    let (_, mut rerun) = news(0.2, 5);
    for engine in [&mut incremental, &mut rerun] {
        engine.initial_run().expect("initial run");
        engine
            .run_update(
                &system.template_update(RuleTemplate::FE1),
                ExecutionMode::Rerun,
            )
            .expect("FE1");
        engine
            .run_update(
                &system.template_update(RuleTemplate::S1),
                ExecutionMode::Rerun,
            )
            .expect("S1");
    }
    incremental.materialize().unwrap();

    for template in [
        RuleTemplate::FE2,
        RuleTemplate::S2,
        RuleTemplate::I1,
        RuleTemplate::A1,
    ] {
        let update = system.template_update(template);
        incremental
            .run_update(&update, ExecutionMode::Incremental)
            .expect("incremental update");
        rerun
            .run_update(&update, ExecutionMode::Rerun)
            .expect("rerun update");
    }

    let inc: HashSet<Tuple> = incremental
        .extract_facts("MarriedMentions", 0.9)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let rr: HashSet<Tuple> = rerun
        .extract_facts("MarriedMentions", 0.9)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    // §4.2: the two executions surface overlapping high-confidence facts.  At
    // this toy scale (tens of documents, hundreds of stored samples instead of
    // thousands) the agreement is looser than the paper's 99%, so the assertion
    // checks for substantial overlap rather than near-identity; the
    // `reproduce_fig10` binary reports the full agreement statistics at the
    // larger experiment scale.
    let overlap = inc.intersection(&rr).count();
    if !rr.is_empty() {
        assert!(
            overlap as f64 >= 0.2 * rr.len() as f64,
            "only {overlap}/{} high-confidence facts shared",
            rr.len()
        );
        // Supervised facts are pinned by evidence and must agree exactly.
        for (tuple, _) in rerun.extract_facts("MarriedMentions", 0.999) {
            if rerun
                .graph()
                .variable(
                    rerun
                        .grounder()
                        .variable_for("MarriedMentions", &tuple)
                        .unwrap(),
                )
                .is_evidence()
            {
                assert!(inc.contains(&tuple), "supervised fact {tuple} missing");
            }
        }
    }
}

#[test]
fn optimizer_choices_match_the_paper_rules_end_to_end() {
    let (system, mut engine) = news(0.15, 9);
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE1),
            ExecutionMode::Rerun,
        )
        .expect("FE1");
    engine.materialize().unwrap();

    // A1 (no change) -> sampling with 100% acceptance.
    let report = engine
        .run_update(
            &system.template_update(RuleTemplate::A1),
            ExecutionMode::Incremental,
        )
        .expect("A1");
    assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
    if let Some(rate) = report.acceptance_rate {
        assert!(rate > 0.99, "A1 acceptance should be ~1.0, got {rate}");
    }

    // S1 (new evidence) -> variational, provided the distant-supervision join
    // produced any labels on this scaled-down corpus.
    let evidence_before = engine.graph().stats().num_evidence_variables;
    let report = engine
        .run_update(
            &system.template_update(RuleTemplate::S1),
            ExecutionMode::Incremental,
        )
        .expect("S1");
    let evidence_after = engine.graph().stats().num_evidence_variables;
    if evidence_after > evidence_before {
        assert_eq!(report.strategy, Some(StrategyChoice::Variational));
    } else {
        assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
    }

    // FE2 (new features) -> sampling.
    let report = engine
        .run_update(
            &system.template_update(RuleTemplate::FE2),
            ExecutionMode::Incremental,
        )
        .expect("FE2");
    assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
}

#[test]
fn new_documents_flow_through_incremental_grounding() {
    let system = KbcSystem::generate(SystemKind::Genomics, 0.3, 11);
    let (initial_db, later_docs) = system.corpus.split_for_incremental(0.8);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(initial_db)
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE1),
            ExecutionMode::Rerun,
        )
        .expect("FE1");
    engine
        .run_update(
            &system.template_update(RuleTemplate::S1),
            ExecutionMode::Rerun,
        )
        .expect("S1");
    engine.materialize().unwrap();
    let vars_before = engine.graph().num_variables();

    // Feed the held-out documents one at a time as incremental updates.
    let mut fed = 0;
    for doc in later_docs.iter().take(5) {
        let mut update = KbcUpdate::new();
        for (table, row) in &doc.rows {
            update.insert(table, row.clone());
        }
        if update.is_empty() {
            continue;
        }
        engine
            .run_update(&update, ExecutionMode::Incremental)
            .expect("document update");
        fed += 1;
    }
    assert!(fed > 0);
    assert!(
        engine.graph().num_variables() > vars_before,
        "new documents should create new candidate variables"
    );
}

#[test]
fn semantics_change_quality_but_not_catastrophically() {
    let mut f1s = Vec::new();
    for semantics in [Semantics::Linear, Semantics::Logical, Semantics::Ratio] {
        let system =
            KbcSystem::generate_with_semantics(SystemKind::Paleontology, 0.2, 13, semantics);
        let mut engine = DeepDive::builder()
            .program(system.program.clone())
            .database(system.corpus.database.clone())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .build()
            .expect("engine builds");
        for (_, update) in system.development_updates() {
            engine
                .run_update(&update, ExecutionMode::Rerun)
                .expect("update applies");
        }
        f1s.push(engine.quality("MarriedMentions", system.truth()).f1);
    }
    // The extractor works under at least one semantics on the clean corpus, and
    // no semantics produces out-of-range quality values.
    assert!(
        f1s.iter().cloned().fold(0.0, f64::max) > 0.2,
        "no semantics produced a working extractor: {f1s:?}"
    );
    for f1 in &f1s {
        assert!((0.0..=1.0).contains(f1));
    }
}

//! Differential oracle for the probability-ordered read indexes.
//!
//! Every op sequence (inserts, deletes, delete+insert flips, supervision
//! retractions) is applied **incrementally** through [`DeepDive::run_update`],
//! so the published snapshot's catalog — both the tuple-sorted index and the
//! ranked view — is the product of many O(Δ) `apply_delta` merges.  After
//! every single op, every `FactQuery` shape (the cross product of
//! `min_probability` × `top_k` × `offset` × `limit`, thresholds including the
//! exact marginals sitting at partition-point boundaries) is executed three
//! ways and the results compared bitwise (`f64::to_bits`, so even a -0.0/+0.0
//! swap would fail):
//!
//! 1. the indexed path ([`FactQuery::run`]) on the live snapshot,
//! 2. the scan path ([`FactQuery::run_scan`]) on the *same* snapshot — pins
//!    indexed ≡ scan over the Δ-maintained catalog, and
//! 3. the scan path on a **from-scratch snapshot** (`CatalogShards::build`
//!    over the grounder's full catalog + the same marginal vector) — pins the
//!    Δ-maintained catalog ≡ a full rebuild, so no merge/retraction drift can
//!    hide behind a matching pair of stale views.
//!
//! A separate deterministic test pins the structural-sharing contract:
//! relations untouched by an update keep **both** index views `Arc`-shared
//! across epochs (their supervision-pinned marginals are bit-stable, so the
//! publish-time revalidation keeps the old Arcs instead of re-ranking).

use deepdive_repro::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Two variable relations so the sharded catalog has multiple shards to get
/// wrong: `FactA` is driven by mixed pinned/unpinned claims (diverse, tied,
/// and exact-0/1 marginals), `FactB` by its own claim table.
const PROGRAM: &str = r#"
    relation ClaimA(id: int) base.
    relation ClaimB(id: int) base.
    relation PosA(id: int) base.
    relation NegA(id: int) base.
    relation PosB(id: int) base.
    relation FactA(id: int) variable.
    relation FactB(id: int) variable.

    rule FA feature: FactA(id) :- ClaimA(id) weight = 1.5.
    rule SAP supervision+: FactA(id) :- ClaimA(id), PosA(id).
    rule SAN supervision-: FactA(id) :- ClaimA(id), NegA(id).
    rule FB feature: FactB(id) :- ClaimB(id) weight = 0.5.
    rule SBP supervision+: FactB(id) :- ClaimB(id), PosB(id).
"#;

fn id(i: i64) -> Tuple {
    Tuple::from_iter([Value::Int(i)])
}

fn base_schemas() -> Vec<&'static str> {
    vec!["ClaimA", "ClaimB", "PosA", "NegA", "PosB"]
}

/// Deterministic splitmix-style generator: no external crates, same sequence
/// on every platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Net base-fact counts, so deletes only target facts that are present.
#[derive(Default)]
struct Model {
    counts: BTreeMap<(&'static str, i64), i64>,
}

impl Model {
    fn insert(&mut self, rel: &'static str, i: i64) {
        *self.counts.entry((rel, i)).or_insert(0) += 1;
    }

    fn present(&self) -> Vec<(&'static str, i64)> {
        self.counts
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(&(r, i), _)| (r, i))
            .collect()
    }
}

/// Even smaller than `EngineConfig::fast()`: the oracle runs thousands of
/// full query cross-products and marginal quality is irrelevant here.
fn fast_config() -> EngineConfig {
    let mut config = EngineConfig::fast();
    config.gibbs = GibbsOptions::new(40, 8, 7);
    config.learn = LearnOptions {
        epochs: 2,
        sweeps_per_epoch: 2,
        ..config.learn
    };
    config
}

fn build_engine(initial: &[(&'static str, i64)], model: &mut Model) -> DeepDive {
    let mut db = Database::new();
    for rel in base_schemas() {
        db.create_table(rel, Schema::of(&[("id", DataType::Int)]))
            .unwrap();
    }
    for &(rel, i) in initial {
        db.insert(rel, id(i)).unwrap();
        model.insert(rel, i);
    }
    DeepDive::builder()
        .program_text(PROGRAM)
        .database(db)
        .udfs(standard_udfs())
        .config(fast_config())
        .build()
        .expect("engine builds")
}

fn run_query(
    snapshot: &Snapshot,
    relation: &str,
    min_p: f64,
    top_k: Option<usize>,
    offset: usize,
    limit: Option<usize>,
    indexed: bool,
) -> Vec<(Tuple, f64)> {
    let mut q = snapshot
        .facts(relation)
        .min_probability(min_p)
        .offset(offset);
    if let Some(k) = top_k {
        q = q.top_k(k);
    }
    if let Some(l) = limit {
        q = q.limit(l);
    }
    if indexed {
        q.run()
    } else {
        q.run_scan()
    }
}

/// Bitwise equality: tuples must match exactly and probabilities must be the
/// same f64 bit pattern (`==` would let -0.0/+0.0 or a NaN slip through).
fn assert_bits_eq(got: &[(Tuple, f64)], want: &[(Tuple, f64)], context: &str) {
    let same = got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
    assert!(
        same,
        "{context}:\n  indexed: {got:?}\n  reference: {want:?}"
    );
}

/// After every op: the full query-shape cross product, three ways (see the
/// module docs), over both real relations and a missing one.
fn check_queries(dd: &DeepDive, context: &str) {
    let snap = dd.snapshot();
    // From-scratch reference: full catalog rebuild + the same marginal
    // vector.  `Snapshot::synthetic` re-ranks it from nothing, so none of the
    // live snapshot's Δ-merged state leaks into the reference.
    let reference = Snapshot::synthetic(
        snap.epoch(),
        snap.marginals().values().to_vec(),
        CatalogShards::build(dd.grounder().variable_catalog(), snap.epoch()),
    );
    for relation in ["FactA", "FactB", "Missing"] {
        // Fixed probes plus live marginals: the exact values sitting at
        // partition-point boundaries, where an off-by-one cut would hide.
        let mut probes = vec![0.0, 0.3, 0.5, 0.8, 1.0];
        if let Some(shard) = snap.catalog().shard(relation) {
            probes.extend(shard.ranked().entries().iter().take(2).map(|(p, _, _)| *p));
        }
        for &min_p in &probes {
            for top_k in [None, Some(0), Some(1), Some(3), Some(100)] {
                for offset in [0usize, 1, 5] {
                    for limit in [None, Some(0), Some(2)] {
                        let shape = format!(
                            "{context}: {relation} min_p={min_p} top_k={top_k:?} \
                             offset={offset} limit={limit:?}"
                        );
                        let indexed = run_query(&snap, relation, min_p, top_k, offset, limit, true);
                        let scan = run_query(&snap, relation, min_p, top_k, offset, limit, false);
                        assert_bits_eq(&indexed, &scan, &format!("{shape} [vs live scan]"));
                        let fresh =
                            run_query(&reference, relation, min_p, top_k, offset, limit, false);
                        assert_bits_eq(&indexed, &fresh, &format!("{shape} [vs from-scratch]"));
                    }
                }
            }
        }
    }
}

/// One seeded random op sequence, incrementally applied and query-checked
/// after every op.
fn run_sequence(seed: u64, ops: usize) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FF_EE00);
    let mut model = Model::default();

    // Seed-dependent initial corpus: a few claims per relation, labels on a
    // subset (so each relation serves a mix of pinned and Gibbs marginals).
    let mut initial = Vec::new();
    for i in 0..(3 + rng.below(3) as i64) {
        initial.push(("ClaimA", i));
        match rng.below(3) {
            0 => initial.push(("PosA", i)),
            1 => initial.push(("NegA", i)),
            _ => {}
        }
    }
    for i in 0..(2 + rng.below(2) as i64) {
        initial.push(("ClaimB", i));
        if rng.below(2) == 0 {
            initial.push(("PosB", i));
        }
    }
    let mut dd = build_engine(&initial, &mut model);
    dd.initial_run().expect("initial run");
    check_queries(&dd, &format!("seed {seed} initial"));

    const RELS: [&str; 5] = ["ClaimA", "ClaimB", "PosA", "NegA", "PosB"];
    for step in 0..ops {
        let mut update = KbcUpdate::new();
        let present = model.present();
        let describe;
        match rng.below(10) {
            // Insert a random base fact (duplicates allowed: counted rows).
            0..=3 => {
                let rel = RELS[rng.below(RELS.len())];
                let i = rng.below(8) as i64;
                update.insert(rel, id(i));
                model.insert(rel, i);
                describe = format!("insert {rel}({i})");
            }
            // Delete one currently-present base fact.
            4..=6 => {
                if present.is_empty() {
                    continue;
                }
                let (rel, i) = present[rng.below(present.len())];
                update.delete(rel, id(i));
                *model.counts.get_mut(&(rel, i)).unwrap() -= 1;
                describe = format!("delete {rel}({i})");
            }
            // Flip: delete one present fact and insert another in one update.
            7 => {
                if present.is_empty() {
                    continue;
                }
                let (rel, i) = present[rng.below(present.len())];
                update.delete(rel, id(i));
                *model.counts.get_mut(&(rel, i)).unwrap() -= 1;
                let j = rng.below(8) as i64;
                update.insert("ClaimA", id(j));
                model.insert("ClaimA", j);
                describe = format!("flip -{rel}({i}) +ClaimA({j})");
            }
            // Retract supervision for a random head (sticky suppression).
            _ => {
                let i = rng.below(8) as i64;
                let rel = if rng.below(2) == 0 { "FactA" } else { "FactB" };
                update.retract_supervision(rel, id(i));
                describe = format!("retract-supervision {rel}({i})");
            }
        }
        dd.run_update(&update, ExecutionMode::Incremental)
            .unwrap_or_else(|e| panic!("seed {seed} step {step} ({describe}): {e}"));
        check_queries(&dd, &format!("seed {seed} step {step} ({describe})"));
    }
}

/// The headline proof: 200 seeded random insert/delete/flip/retract
/// sequences, each op applied through `run_update` and every query shape
/// checked bitwise against both references.  Split into four tests so the
/// harness runs them on separate threads.
#[test]
fn indexed_query_oracle_seeds_0_to_49() {
    for seed in 0..50 {
        run_sequence(seed, 6);
    }
}

#[test]
fn indexed_query_oracle_seeds_50_to_99() {
    for seed in 50..100 {
        run_sequence(seed, 6);
    }
}

#[test]
fn indexed_query_oracle_seeds_100_to_149() {
    for seed in 100..150 {
        run_sequence(seed, 6);
    }
}

#[test]
fn indexed_query_oracle_seeds_150_to_199() {
    for seed in 150..200 {
        run_sequence(seed, 6);
    }
}

/// Longer soak: more seeds, deeper sequences.  Run with
/// `cargo test --test indexes -- --ignored`.
#[test]
#[ignore = "soak: ~10x the default oracle run"]
fn indexed_query_oracle_soak() {
    for seed in 200..600 {
        run_sequence(seed, 16);
    }
}

/// The structural-sharing contract: an update that only touches `FactA`'s
/// claims leaves `FactB`'s shard — tuple-sorted index *and* ranked view —
/// `Arc`-shared with every previous epoch.  `FactB` is fully
/// supervision-pinned here, so its marginals are bit-stable and the
/// publish-time revalidation must keep the old Arcs instead of re-ranking.
#[test]
fn untouched_relations_share_both_views_across_epochs() {
    let mut model = Model::default();
    let initial: Vec<(&'static str, i64)> = (0..4)
        .flat_map(|i| [("ClaimB", i), ("PosB", i)])
        .chain((0..3).map(|i| ("ClaimA", i)))
        .collect();
    let mut dd = build_engine(&initial, &mut model);
    dd.initial_run().expect("initial run");

    let mut previous = dd.snapshot();
    for step in 0..4i64 {
        let mut update = KbcUpdate::new();
        update.insert("ClaimA", id(10 + step));
        if step % 2 == 0 {
            update.insert("PosA", id(10 + step));
        }
        dd.run_update(&update, ExecutionMode::Incremental)
            .expect("update applies");
        let current = dd.snapshot();
        assert_eq!(current.epoch(), previous.epoch() + 1);

        let old = previous.catalog().shard("FactB").expect("FactB shard");
        let new = current.catalog().shard("FactB").expect("FactB shard");
        assert!(
            Arc::ptr_eq(old.index(), new.index()),
            "step {step}: untouched FactB must share its tuple-sorted index"
        );
        assert!(
            Arc::ptr_eq(old.ranked(), new.ranked()),
            "step {step}: untouched FactB must share its ranked view"
        );
        // The touched relation was re-indexed in both views.
        let old_a = previous.catalog().shard("FactA").expect("FactA shard");
        let new_a = current.catalog().shard("FactA").expect("FactA shard");
        assert!(!Arc::ptr_eq(old_a.index(), new_a.index()));
        assert!(!Arc::ptr_eq(old_a.ranked(), new_a.ranked()));
        check_queries(&dd, &format!("sharing step {step}"));
        previous = current;
    }
}

//! Property-based tests over the core data structures and invariants.
//!
//! The build environment has no crates.io access, so instead of the `proptest`
//! crate these use a small in-file harness: each property runs over `CASES`
//! deterministic seeds, generating random inputs from the vendored RNG.  A
//! failing case prints its seed, which reproduces the input exactly.

use deepdive_repro::factorgraph::FlatGraph;
use deepdive_repro::inference::{
    DistributionChange, GibbsOptions, GibbsSampler, SampleMaterialization, StrawmanMaterialization,
};
use deepdive_repro::prelude::*;
use deepdive_repro::relstore::view::{Filter, QueryAtom, Term};
use deepdive_repro::relstore::{ConjunctiveQuery, DeltaRelation, MaterializedView};
use deepdive_repro::workloads::{pairwise_graph, weight_perturbation, SyntheticConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Number of random cases per property.
const CASES: u64 = 24;

/// Run `body` for `CASES` seeds, labelling failures with the seed.
fn for_cases(name: &str, mut body: impl FnMut(&mut StdRng, u64)) {
    for case in 0..CASES {
        let seed = 0xdd00 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng, seed)));
        if let Err(panic) = result {
            eprintln!("property `{name}` failed for case seed {seed}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// A random synthetic pairwise graph of 2..max_vars variables.
fn random_graph(rng: &mut StdRng, max_vars: usize) -> FactorGraph {
    pairwise_graph(&SyntheticConfig {
        num_variables: rng.gen_range(2..max_vars),
        sparsity: rng.gen_range(0.1..=1.0),
        seed: rng.gen::<u64>() % 500,
        ..Default::default()
    })
}

/// A uniformly random world over the graph's variables.
fn random_world(rng: &mut StdRng, g: &FactorGraph) -> deepdive_repro::factorgraph::World {
    deepdive_repro::factorgraph::World::from_values(
        (0..g.num_variables()).map(|_| rng.gen::<bool>()).collect(),
    )
}

/// Counting IVM invariant: for any sequence of insertions and deletions to
/// the base relation, incrementally maintaining the self-join view gives
/// exactly the same result as recomputing it from scratch.
#[test]
fn incremental_view_matches_full_recompute() {
    for_cases("incremental_view_matches_full_recompute", |rng, _| {
        let mut db = Database::new();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[("s", DataType::Int), ("m", DataType::Int)]),
        )
        .unwrap();
        let num_docs = rng.gen_range(1..25);
        for _ in 0..num_docs {
            let s = rng.gen_range(0i64..6);
            let m = rng.gen_range(0i64..12);
            db.insert(
                "PersonCandidate",
                Tuple::from_iter([Value::Int(s), Value::Int(m)]),
            )
            .unwrap();
        }
        let query = ConjunctiveQuery::new(
            "Pairs",
            vec!["m1".into(), "m2".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m1")]),
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m2")]),
            ],
        )
        .with_filters(vec![Filter::Lt("m1".into(), "m2".into())]);
        let mut view = MaterializedView::materialize(query.clone(), &db).unwrap();

        let mut delta = DeltaRelation::new("PersonCandidate");
        let num_changes = rng.gen_range(1..10);
        for _ in 0..num_changes {
            let insert = rng.gen::<bool>();
            let s = rng.gen_range(0i64..6);
            let m = rng.gen_range(0i64..12);
            let t = Tuple::from_iter([Value::Int(s), Value::Int(m)]);
            if insert {
                delta.insert(t);
            } else if db.table("PersonCandidate").unwrap().contains(&t) {
                delta.delete(t);
            }
        }
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), delta.clone());
        view.refresh_incremental(&db, &deltas).unwrap();

        delta.apply_to(db.table_mut("PersonCandidate").unwrap());
        let full = query.evaluate(&db).unwrap();
        assert_eq!(view.result().sorted_tuples(), full.sorted_tuples());
    });
}

/// The factor-graph energy decomposes locally: the energy delta computed
/// from a variable's adjacent factors equals the difference of total log
/// weights of the two full worlds.
#[test]
fn energy_delta_matches_global_difference() {
    for_cases("energy_delta_matches_global_difference", |rng, _| {
        let g = random_graph(rng, 12);
        let v = rng.gen_range(0..g.num_variables());
        let mut world = g.initial_world();
        let delta = g.energy_delta(v, &mut world);
        world.set(v, true);
        let e1 = g.log_weight(&world);
        world.set(v, false);
        let e0 = g.log_weight(&world);
        assert!((delta - (e1 - e0)).abs() < 1e-9);
    });
}

/// The compiled representation computes exactly the same energy deltas as the
/// build-side graph, for every variable, on arbitrary worlds — the invariant
/// every sampler's correctness now rests on.
#[test]
fn flat_energy_delta_matches_factor_graph() {
    for_cases("flat_energy_delta_matches_factor_graph", |rng, _| {
        let g = random_graph(rng, 16);
        let flat = g.compile();
        for _ in 0..4 {
            let world = random_world(rng, &g);
            let mut scratch = world.clone();
            for v in 0..g.num_variables() {
                let legacy = g.energy_delta(v, &mut scratch);
                let fast = flat.energy_delta(v, &world);
                assert!(
                    (legacy - fast).abs() < 1e-9,
                    "var {v}: legacy {legacy} vs flat {fast}"
                );
            }
            // The scratch world must have been restored by the legacy path.
            assert_eq!(scratch, world);
        }
    });
}

/// Flat log-weight over the bit-packed world equals the dense log-weight over
/// the same assignment viewed as a plain `Vec<bool>`.
#[test]
fn flat_log_weight_matches_dense_log_weight() {
    for_cases("flat_log_weight_matches_dense_log_weight", |rng, _| {
        let g = random_graph(rng, 16);
        let flat = g.compile();
        for _ in 0..4 {
            let world = random_world(rng, &g);
            let dense: Vec<bool> = world.to_vec();
            let packed = flat.log_weight(&world);
            let reference = g.log_weight(&dense);
            assert!(
                (packed - reference).abs() < 1e-9,
                "packed {packed} vs dense {reference}"
            );
        }
    });
}

/// Marginal probabilities are always valid probabilities, evidence variables
/// are pinned, and a deterministic seed reproduces the run.
#[test]
fn gibbs_marginals_are_probabilities() {
    for_cases("gibbs_marginals_are_probabilities", |rng, _| {
        let seed = rng.gen::<u64>() % 100;
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: rng.gen_range(2..20),
            seed,
            ..Default::default()
        });
        let m1 = GibbsSampler::new(&g, seed).run(&GibbsOptions::new(60, 10, seed));
        let m2 = GibbsSampler::new(&g, seed).run(&GibbsOptions::new(60, 10, seed));
        assert_eq!(m1.values(), m2.values());
        for v in 0..g.num_variables() {
            assert!((0.0..=1.0).contains(&m1.get(v)));
        }
    });
}

/// Determinism across representations: a sampler that compiles the graph
/// itself and one borrowing a shared [`FlatGraph`] compilation walk the exact
/// same chain for the same seed.
#[test]
fn gibbs_is_deterministic_across_representations() {
    for_cases("gibbs_is_deterministic_across_representations", |rng, _| {
        let g = random_graph(rng, 20);
        let flat = FlatGraph::compile(&g);
        let seed = rng.gen::<u64>();
        let opts = GibbsOptions::new(50, 5, seed);
        let owned = GibbsSampler::new(&g, seed).run(&opts);
        let borrowed = GibbsSampler::from_flat(&flat, seed).run(&opts);
        assert_eq!(owned.values(), borrowed.values());

        // Sweep-level worlds agree too, not just aggregated marginals.
        let mut a = GibbsSampler::new(&g, seed);
        let mut b = GibbsSampler::from_flat(&flat, seed);
        for _ in 0..10 {
            a.sweep();
            b.sweep();
            assert_eq!(a.world(), b.world());
        }
    });
}

/// The sampling strategy's tuple bundles use one bit per variable, and the
/// strawman's incremental marginals agree with exact enumeration after an
/// arbitrary weight perturbation.
#[test]
fn strawman_incremental_is_exact() {
    for_cases("strawman_incremental_is_exact", |rng, _| {
        let n = rng.gen_range(2..8);
        let seed = rng.gen::<u64>() % 200;
        let g0 = pairwise_graph(&SyntheticConfig {
            num_variables: n,
            seed,
            ..Default::default()
        });
        let straw = StrawmanMaterialization::materialize(&g0).unwrap();
        let sampling = SampleMaterialization::materialize(&g0, 16, 4, seed);
        assert_eq!(sampling.storage_bytes(), 16 * n.div_ceil(8));

        let magnitude = rng.gen_range(0.0..2.0);
        let delta = weight_perturbation(&g0, 0.5, magnitude, seed ^ 0xabc);
        let mut g = g0.clone();
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let marginals = straw.incremental_marginals(&g, &change).unwrap();
        for v in 0..n {
            assert!((marginals.get(v) - g.exact_marginal(v)).abs() < 1e-9);
        }
    });
}

/// Rule semantics: g is monotone and Logical is bounded by 1.
#[test]
fn semantics_monotonicity() {
    for_cases("semantics_monotonicity", |rng, _| {
        let count = rng.gen_range(0usize..10_000);
        for s in Semantics::all() {
            assert!(s.g(count + 1) >= s.g(count));
        }
        assert!(Semantics::Logical.g(count) <= 1.0);
        assert!((Semantics::Linear.g(count) - count as f64).abs() < 1e-12);
    });
}

//! Property-based tests over the core data structures and invariants.

use deepdive_repro::inference::{
    DistributionChange, GibbsOptions, GibbsSampler, SampleMaterialization,
    StrawmanMaterialization,
};
use deepdive_repro::prelude::*;
use deepdive_repro::relstore::view::{Filter, QueryAtom, Term};
use deepdive_repro::relstore::{ConjunctiveQuery, DeltaRelation, MaterializedView};
use deepdive_repro::workloads::{pairwise_graph, weight_perturbation, SyntheticConfig};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counting IVM invariant: for any sequence of insertions and deletions to
    /// the base relation, incrementally maintaining the self-join view gives
    /// exactly the same result as recomputing it from scratch.
    #[test]
    fn incremental_view_matches_full_recompute(
        docs in proptest::collection::vec((0i64..6, 0i64..12), 1..25),
        changes in proptest::collection::vec((any::<bool>(), 0i64..6, 0i64..12), 1..10),
    ) {
        let mut db = Database::new();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[("s", DataType::Int), ("m", DataType::Int)]),
        ).unwrap();
        for (s, m) in &docs {
            db.insert("PersonCandidate", Tuple::from_iter([Value::Int(*s), Value::Int(*m)])).unwrap();
        }
        let query = ConjunctiveQuery::new(
            "Pairs",
            vec!["m1".into(), "m2".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m1")]),
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m2")]),
            ],
        ).with_filters(vec![Filter::Lt("m1".into(), "m2".into())]);
        let mut view = MaterializedView::materialize(query.clone(), &db).unwrap();

        let mut delta = DeltaRelation::new("PersonCandidate");
        for (insert, s, m) in &changes {
            let t = Tuple::from_iter([Value::Int(*s), Value::Int(*m)]);
            if *insert {
                delta.insert(t);
            } else if db.table("PersonCandidate").unwrap().contains(&t) {
                delta.delete(t);
            }
        }
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), delta.clone());
        view.refresh_incremental(&db, &deltas).unwrap();

        delta.apply_to(db.table_mut("PersonCandidate").unwrap());
        let full = query.evaluate(&db).unwrap();
        prop_assert_eq!(view.result().sorted_tuples(), full.sorted_tuples());
    }

    /// The factor-graph energy decomposes locally: the energy delta computed
    /// from a variable's adjacent factors equals the difference of total log
    /// weights of the two full worlds.
    #[test]
    fn energy_delta_matches_global_difference(
        n in 2usize..12,
        sparsity in 0.1f64..1.0,
        seed in 0u64..500,
        var_frac in 0.0f64..1.0,
    ) {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: n,
            sparsity,
            seed,
            ..Default::default()
        });
        let v = ((n as f64 - 1.0) * var_frac) as usize;
        let mut world = g.initial_world();
        let delta = g.energy_delta(v, &mut world);
        world.set(v, true);
        let e1 = g.log_weight(&world);
        world.set(v, false);
        let e0 = g.log_weight(&world);
        prop_assert!((delta - (e1 - e0)).abs() < 1e-9);
    }

    /// Marginal probabilities are always valid probabilities, evidence variables
    /// are pinned, and a deterministic seed reproduces the run.
    #[test]
    fn gibbs_marginals_are_probabilities(
        n in 2usize..20,
        seed in 0u64..100,
    ) {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: n,
            seed,
            ..Default::default()
        });
        let m1 = GibbsSampler::new(&g, seed).run(&GibbsOptions::new(60, 10, seed));
        let m2 = GibbsSampler::new(&g, seed).run(&GibbsOptions::new(60, 10, seed));
        prop_assert_eq!(m1.values(), m2.values());
        for v in 0..n {
            prop_assert!((0.0..=1.0).contains(&m1.get(v)));
        }
    }

    /// The sampling strategy's tuple bundles use one bit per variable, and the
    /// strawman's incremental marginals agree with exact enumeration after an
    /// arbitrary weight perturbation.
    #[test]
    fn strawman_incremental_is_exact(
        n in 2usize..8,
        magnitude in 0.0f64..2.0,
        seed in 0u64..200,
    ) {
        let g0 = pairwise_graph(&SyntheticConfig {
            num_variables: n,
            seed,
            ..Default::default()
        });
        let straw = StrawmanMaterialization::materialize(&g0).unwrap();
        let sampling = SampleMaterialization::materialize(&g0, 16, 4, seed);
        prop_assert_eq!(sampling.storage_bytes(), 16 * n.div_ceil(8));

        let delta = weight_perturbation(&g0, 0.5, magnitude, seed ^ 0xabc);
        let mut g = g0.clone();
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let marginals = straw.incremental_marginals(&g, &change).unwrap();
        for v in 0..n {
            prop_assert!((marginals.get(v) - g.exact_marginal(v)).abs() < 1e-9);
        }
    }

    /// Rule semantics: g is monotone and Logical is bounded by 1.
    #[test]
    fn semantics_monotonicity(count in 0usize..10_000) {
        for s in Semantics::all() {
            prop_assert!(s.g(count + 1) >= s.g(count));
        }
        prop_assert!(Semantics::Logical.g(count) <= 1.0);
        prop_assert!((Semantics::Linear.g(count) - count as f64).abs() < 1e-12);
    }
}

//! Crash-recovery integration tests for the durability layer.
//!
//! Three kinds of fault are injected here, end to end through the public
//! `DeepDiveBuilder::durability` API:
//!
//! * **kill -9** — a child *process* (this same test binary, re-spawned in
//!   child mode) runs a workload against a data directory and `abort()`s
//!   without any cleanup; the parent recovers the directory and asserts the
//!   recovered engine is *byte-identical* (via the canonical snapshot
//!   encoding) to a reference engine that executed the same operations and
//!   never crashed.
//! * **byte-level WAL damage** — the log's final record is truncated at every
//!   byte boundary and bit-flipped at every byte offset; recovery must never
//!   panic, and must land exactly on the state without the damaged operation.
//! * **checkpoint damage** — the newest checkpoint file is corrupted;
//!   recovery must fall back to the previous checkpoint and replay the WAL
//!   forward without losing a single operation.
//!
//! Recovery is also exercised for idempotency (recovering the same directory
//! twice changes nothing, on disk or in the recovered state — including with
//! `.tmp` debris from a crashed checkpoint rotation), and a recovered engine
//! is put behind a real `dd-server` socket to prove it serves the exact
//! pre-crash answers, pinned supervised facts included.
//!
//! Everything runs the sequential Gibbs path (tiny graphs stay far below
//! `parallel_threshold`), which is bit-deterministic per seed — the property
//! the byte-identical assertions lean on.

use deepdive_repro::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const PROGRAM: &str = r#"
    relation Sentence(s: int, content: text) base.
    relation PersonCandidate(s: int, m: int, t: text) base.
    relation EL(m: int, e: text) base.
    relation Married(e1: text, e2: text) base.
    relation MarriedCandidate(m1: int, m2: int) derived.
    relation MarriedMentions(m1: int, m2: int) variable.

    rule R1 candidate:
      MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

    rule FE1 feature:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
        Sentence(s, content)
      weight = phrase(t1, t2, content).

    rule S1 supervision+:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"#;

fn database() -> Database {
    let mut db = Database::new();
    db.create_table(
        "Sentence",
        Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
    )
    .unwrap();
    db.create_table(
        "PersonCandidate",
        Schema::of(&[
            ("s", DataType::Int),
            ("m", DataType::Int),
            ("t", DataType::Text),
        ]),
    )
    .unwrap();
    db.create_table(
        "EL",
        Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
    )
    .unwrap();
    db.create_table(
        "Married",
        Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
    )
    .unwrap();
    db.insert_all(
        "Sentence",
        vec![
            Tuple::from_iter([
                Value::Int(1),
                Value::text("Barack and his wife Michelle attended the dinner"),
            ]),
            Tuple::from_iter([
                Value::Int(2),
                Value::text("George and his wife Laura were married"),
            ]),
            Tuple::from_iter([
                Value::Int(3),
                Value::text("Malia and Sasha attended the state dinner"),
            ]),
        ],
    )
    .unwrap();
    db.insert_all(
        "PersonCandidate",
        vec![
            Tuple::from_iter([Value::Int(1), Value::Int(10), Value::text("Barack")]),
            Tuple::from_iter([Value::Int(1), Value::Int(11), Value::text("Michelle")]),
            Tuple::from_iter([Value::Int(2), Value::Int(20), Value::text("George")]),
            Tuple::from_iter([Value::Int(2), Value::Int(21), Value::text("Laura")]),
            Tuple::from_iter([Value::Int(3), Value::Int(30), Value::text("Malia")]),
            Tuple::from_iter([Value::Int(3), Value::Int(31), Value::text("Sasha")]),
        ],
    )
    .unwrap();
    db.insert_all(
        "EL",
        vec![
            Tuple::from_iter([Value::Int(10), Value::text("Barack_Obama_1")]),
            Tuple::from_iter([Value::Int(11), Value::text("Michelle_Obama_1")]),
        ],
    )
    .unwrap();
    db.insert_all(
        "Married",
        vec![Tuple::from_iter([
            Value::text("Barack_Obama_1"),
            Value::text("Michelle_Obama_1"),
        ])],
    )
    .unwrap();
    db
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dd-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A durable engine over `dir` — opens a pristine directory or recovers an
/// existing one.
fn durable(dir: &Path) -> DeepDive {
    DeepDive::builder()
        .program_text(PROGRAM)
        .database(database())
        .config(EngineConfig::fast())
        .durability(DurabilityConfig::new(dir))
        .build()
        .expect("durable engine opens or recovers")
}

/// The in-memory twin: same program, database, and config — no data dir.
fn in_memory() -> DeepDive {
    DeepDive::builder()
        .program_text(PROGRAM)
        .database(database())
        .config(EngineConfig::fast())
        .build()
        .expect("in-memory engine builds")
}

/// The canonical operation sequence every test draws a prefix of.  Ops 6 and
/// 7 exercise the retraction surface: a deletion update that compacts the
/// factor graph (op 6) and a supervision retraction logged as its own
/// `RetractSupervision` WAL record (op 7) — so every kill-9 boundary,
/// truncation sweep, and bit-flip sweep below covers them too.
const NUM_OPS: u64 = 7;

fn apply_op(dd: &mut DeepDive, op: u64) {
    match op {
        1 => {
            dd.initial_run().unwrap();
        }
        2 => dd.materialize().unwrap(),
        3 => {
            // New supervision: George/Laura become a known married pair.
            let mut update = KbcUpdate::new();
            update
                .insert(
                    "EL",
                    Tuple::from_iter([Value::Int(20), Value::text("George_Bush_1")]),
                )
                .insert(
                    "EL",
                    Tuple::from_iter([Value::Int(21), Value::text("Laura_Bush_1")]),
                )
                .insert(
                    "Married",
                    Tuple::from_iter([Value::text("George_Bush_1"), Value::text("Laura_Bush_1")]),
                );
            dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        }
        4 => {
            // New document: the graph grows past the materialization.
            let mut update = KbcUpdate::new();
            update
                .insert(
                    "Sentence",
                    Tuple::from_iter([
                        Value::Int(4),
                        Value::text("Franklin and his wife Eleanor hosted the gala"),
                    ]),
                )
                .insert(
                    "PersonCandidate",
                    Tuple::from_iter([Value::Int(4), Value::Int(40), Value::text("Franklin")]),
                )
                .insert(
                    "PersonCandidate",
                    Tuple::from_iter([Value::Int(4), Value::Int(41), Value::text("Eleanor")]),
                );
            dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        }
        5 => {
            dd.refresh().unwrap();
        }
        6 => {
            // Retract the document added by op 4: the candidate pair, its
            // variable, and its factors are swap-remove-compacted away, and
            // the stale materialization is dropped.
            let mut update = KbcUpdate::new();
            update.delete(
                "PersonCandidate",
                Tuple::from_iter([Value::Int(4), Value::Int(40), Value::text("Franklin")]),
            );
            dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        }
        7 => {
            // Un-pin the original supervised fact; logged as its own
            // `RetractSupervision` WAL op.
            dd.retract_supervision(
                "MarriedMentions",
                Tuple::from_iter([Value::Int(10), Value::Int(11)]),
            )
            .unwrap();
        }
        _ => unreachable!("op {op} is not part of the canonical sequence"),
    }
}

/// `(epoch, canonical snapshot bytes)` of an engine that executed ops
/// `1..=upto` and never crashed.
fn reference_state(upto: u64) -> (u64, Vec<u8>) {
    let mut dd = in_memory();
    for op in 1..=upto {
        apply_op(&mut dd, op);
    }
    (dd.epoch(), encode_snapshot(&dd.snapshot()))
}

fn recovered_state(dir: &Path) -> (u64, Vec<u8>) {
    let dd = durable(dir);
    (dd.epoch(), encode_snapshot(&dd.snapshot()))
}

// ------------------------------------------------------------- kill -9 tests

/// Child half of the kill-9 tests.  Inert in a normal test run; when the
/// parent re-spawns this binary with `DD_RECOVERY_DIR` set, it executes the
/// requested operation prefix against that directory and dies by `abort()` —
/// no destructors, no flushes, no clean shutdown.
#[test]
fn recovery_child() {
    let Ok(dir) = std::env::var("DD_RECOVERY_DIR") else {
        return;
    };
    let crash_after: u64 = std::env::var("DD_CRASH_AFTER").unwrap().parse().unwrap();
    let checkpoint_after: Option<u64> = std::env::var("DD_CHECKPOINT_AFTER")
        .ok()
        .map(|v| v.parse().unwrap());
    let mut dd = durable(Path::new(&dir));
    for op in 1..=crash_after {
        apply_op(&mut dd, op);
        if checkpoint_after == Some(op) {
            dd.checkpoint().unwrap();
        }
    }
    std::process::abort();
}

/// Re-run this test binary as a crashing child and wait for it to die.
fn spawn_crashing_child(dir: &Path, crash_after: u64, checkpoint_after: Option<u64>) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg("recovery_child")
        .arg("--exact")
        .arg("--nocapture")
        .env("DD_RECOVERY_DIR", dir)
        .env("DD_CRASH_AFTER", crash_after.to_string());
    if let Some(op) = checkpoint_after {
        cmd.env("DD_CHECKPOINT_AFTER", op.to_string());
    }
    let status = cmd.status().expect("spawning the crashing child");
    assert!(
        !status.success(),
        "the child is supposed to abort, got {status:?}"
    );
    // A panic inside the child would be a clean (failing) exit with a code; a
    // real kill has none.  Distinguishing the two keeps a broken child
    // workload from masquerading as a crash test.
    #[cfg(unix)]
    assert!(
        status.code().is_none(),
        "the child must die by signal, not exit cleanly: {status:?}"
    );
}

#[test]
fn killed_at_every_op_boundary_recovers_the_exact_pre_crash_state() {
    for crash_after in 1..=NUM_OPS {
        let dir = temp_dir(&format!("kill{crash_after}"));
        spawn_crashing_child(&dir, crash_after, None);
        let (epoch, bytes) = recovered_state(&dir);
        let (want_epoch, want_bytes) = reference_state(crash_after);
        assert_eq!(epoch, want_epoch, "epoch after crash at op {crash_after}");
        assert_eq!(
            bytes, want_bytes,
            "snapshot after crash at op {crash_after} must be byte-identical"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_after_a_mid_stream_checkpoint_recovers_identically() {
    // Checkpoint after op 3: recovery loads that checkpoint and replays only
    // op 4's WAL record — and must land on the same bytes as a full rerun.
    let dir = temp_dir("killckpt");
    spawn_crashing_child(&dir, 4, Some(3));
    let (epoch, bytes) = recovered_state(&dir);
    let (want_epoch, want_bytes) = reference_state(4);
    assert_eq!(epoch, want_epoch);
    assert_eq!(bytes, want_bytes);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovered_engine_serves_exact_answers_through_the_server() {
    let dir = temp_dir("serve");
    spawn_crashing_child(&dir, 3, Some(2));
    let recovered = durable(&dir);
    let (want_epoch, _) = reference_state(3);

    let server = Server::bind("127.0.0.1:0", recovered.reader(), ServerConfig::default())
        .expect("server binds over the recovered engine");
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.epoch().unwrap(), want_epoch);

    // The original supervised fact is still pinned at probability 1.0...
    let (epoch, p) = client
        .probability_of(
            "MarriedMentions",
            Tuple::from_iter([Value::Int(10), Value::Int(11)]),
        )
        .unwrap();
    assert_eq!(epoch, want_epoch);
    assert_eq!(p, Some(1.0), "supervised fact must stay pinned");
    // ...and so is the one supervised by the *replayed* update.
    let (_, p) = client
        .probability_of(
            "MarriedMentions",
            Tuple::from_iter([Value::Int(20), Value::Int(21)]),
        )
        .unwrap();
    assert_eq!(p, Some(1.0), "fact supervised by the replayed op 3");

    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------- byte-level WAL damage

/// Offsets at which each WAL record starts, by walking the length prefixes
/// (`[u32 len][u32 crc][u64 seq][payload]`, so a record spans `16 + len`).
fn record_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut offset = 0usize;
    while offset + 16 <= bytes.len() {
        starts.push(offset);
        let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 16 + len;
    }
    assert_eq!(offset, bytes.len(), "segment ends on a record boundary");
    starts
}

/// The single live WAL segment of a data dir (these workloads never rotate
/// past one).
fn only_wal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected exactly one WAL segment");
    segments.remove(0)
}

#[test]
fn wal_tail_truncated_at_every_byte_boundary_recovers_cleanly() {
    let dir = temp_dir("truncate");
    {
        let mut dd = durable(&dir);
        for op in 1..=4 {
            apply_op(&mut dd, op);
        }
    }
    let segment = only_wal_segment(&dir);
    let intact = fs::read(&segment).unwrap();
    let tail_start = *record_starts(&intact).last().unwrap();
    let with_tail = reference_state(4);
    let without_tail = reference_state(3);

    // Undamaged log replays everything.
    assert_eq!(recovered_state(&dir), with_tail);

    // Every truncation point inside the final record cleanly loses exactly
    // that one operation — no panic, no partial application.
    for cut in tail_start..intact.len() {
        fs::write(&segment, &intact[..cut]).unwrap();
        assert_eq!(
            recovered_state(&dir),
            without_tail,
            "truncation at byte {cut} of {}",
            intact.len()
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_tail_bit_flips_are_detected_and_truncated() {
    let dir = temp_dir("bitflip");
    {
        let mut dd = durable(&dir);
        for op in 1..=4 {
            apply_op(&mut dd, op);
        }
    }
    let segment = only_wal_segment(&dir);
    let intact = fs::read(&segment).unwrap();
    let tail_start = *record_starts(&intact).last().unwrap();
    let without_tail = reference_state(3);

    // A flip anywhere in the final record — length prefix, checksum,
    // sequence, or payload — must be caught and truncated away.
    for byte in tail_start..intact.len() {
        let mut damaged = intact.clone();
        damaged[byte] ^= 0x40;
        fs::write(&segment, &damaged).unwrap();
        assert_eq!(
            recovered_state(&dir),
            without_tail,
            "bit flip at byte {byte} of {}",
            intact.len()
        );
        // Recovery repaired the file in place; restore the full log so the
        // next iteration damages a fresh copy.
        fs::write(&segment, &intact).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_log_damage_truncates_everything_after_it() {
    // Damage in the *middle* of the log is still tail damage — everything
    // from the damaged record on is unreachable and gets truncated.  Here the
    // materialize record (op 2) is hit, so only op 1 survives.
    let dir = temp_dir("midlog");
    {
        let mut dd = durable(&dir);
        for op in 1..=4 {
            apply_op(&mut dd, op);
        }
    }
    let segment = only_wal_segment(&dir);
    let mut bytes = fs::read(&segment).unwrap();
    let starts = record_starts(&bytes);
    assert_eq!(starts.len(), 4);
    bytes[starts[1] + 20] ^= 0x01; // payload byte of record 2
    fs::write(&segment, &bytes).unwrap();
    assert_eq!(recovered_state(&dir), reference_state(1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retraction_wal_records_survive_tail_truncation_and_bit_flips() {
    // Run the full sequence so the final two records are the retraction ops:
    // record 6 is the deletion `Update`, record 7 the `RetractSupervision`.
    let dir = temp_dir("retracttail");
    {
        let mut dd = durable(&dir);
        for op in 1..=NUM_OPS {
            apply_op(&mut dd, op);
        }
    }
    let segment = only_wal_segment(&dir);
    let intact = fs::read(&segment).unwrap();
    let starts = record_starts(&intact);
    assert_eq!(starts.len(), NUM_OPS as usize);
    let without_tail = reference_state(NUM_OPS - 1);

    // Undamaged: the whole sequence, retractions included, replays.
    assert_eq!(recovered_state(&dir), reference_state(NUM_OPS));

    // Truncation anywhere inside the RetractSupervision record cleanly loses
    // exactly that op.
    let tail_start = *starts.last().unwrap();
    for cut in (tail_start..intact.len()).step_by(3) {
        fs::write(&segment, &intact[..cut]).unwrap();
        assert_eq!(
            recovered_state(&dir),
            without_tail,
            "truncation at byte {cut} of {}",
            intact.len()
        );
    }

    // Bit flips in the final record are detected and truncated away; a flip
    // in the deletion-update record (6) truncates ops 6..=7.
    for byte in (tail_start..intact.len()).step_by(3) {
        let mut damaged = intact.clone();
        damaged[byte] ^= 0x40;
        fs::write(&segment, &damaged).unwrap();
        assert_eq!(
            recovered_state(&dir),
            without_tail,
            "bit flip at byte {byte} of {}",
            intact.len()
        );
        fs::write(&segment, &intact).unwrap();
    }
    let mut damaged = intact.clone();
    damaged[starts[5] + 20] ^= 0x01; // payload byte of the deletion record
    fs::write(&segment, &damaged).unwrap();
    assert_eq!(recovered_state(&dir), reference_state(5));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_after_retractions_recovers_byte_exactly() {
    // The checkpoint is written *after* both retraction ops, so the v2
    // grounder codec must round-trip the shrunken graph, the grounding
    // records, and the sticky suppression set byte-exactly.
    let dir = temp_dir("retractckpt");
    spawn_crashing_child(&dir, NUM_OPS, Some(NUM_OPS));
    let (epoch, bytes) = recovered_state(&dir);
    let (want_epoch, want_bytes) = reference_state(NUM_OPS);
    assert_eq!(epoch, want_epoch);
    assert_eq!(
        bytes, want_bytes,
        "checkpoint taken after retraction ops must recover byte-identically"
    );
    let _ = fs::remove_dir_all(&dir);
}

// --------------------------------------------------------- checkpoint damage

#[test]
fn damaged_newest_checkpoint_falls_back_without_losing_operations() {
    let dir = temp_dir("ckptdmg");
    {
        let mut dd = durable(&dir);
        apply_op(&mut dd, 1);
        apply_op(&mut dd, 2);
        // Writes ckpt-2; with keep_checkpoints=2 the baseline ckpt-0 is
        // retained too, so the WAL keeps records 1..=2 for exactly this
        // fallback.
        dd.checkpoint().unwrap();
        apply_op(&mut dd, 3);
    }
    let newest = dir
        .join("checkpoints")
        .join("ckpt-00000000000000000002.ckpt");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&newest, &bytes).unwrap();

    // Fallback lands on the baseline checkpoint and replays ops 1..=3 from
    // the (un-pruned) WAL: nothing is lost.
    assert_eq!(recovered_state(&dir), reference_state(3));
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------- recovery idempotency

/// Every `(relative path, contents)` under `dir`, sorted — a full fingerprint
/// of the on-disk state.
fn dir_fingerprint(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.push((rel, fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

#[test]
fn recovering_the_same_directory_twice_is_byte_identical() {
    let dir = temp_dir("idem");
    {
        let mut dd = durable(&dir);
        apply_op(&mut dd, 1);
        apply_op(&mut dd, 2);
        dd.checkpoint().unwrap();
        apply_op(&mut dd, 3);
    }
    let first = recovered_state(&dir);
    let disk_after_first = dir_fingerprint(&dir);
    let second = recovered_state(&dir);
    let disk_after_second = dir_fingerprint(&dir);

    assert_eq!(first, second, "two recoveries must agree byte for byte");
    assert_eq!(first, reference_state(3));
    assert_eq!(
        disk_after_first, disk_after_second,
        "a recovery with nothing to repair must not touch the directory"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent_across_a_crashed_checkpoint_rotation() {
    // Simulate dying mid-checkpoint: `.tmp` debris in the checkpoint dir and
    // a torn final WAL record, at the same time.
    let dir = temp_dir("idemtmp");
    {
        let mut dd = durable(&dir);
        for op in 1..=3 {
            apply_op(&mut dd, op);
        }
    }
    fs::write(
        dir.join("checkpoints")
            .join("ckpt-00000000000000000003.ckpt.tmp"),
        b"half-written checkpoint payload",
    )
    .unwrap();
    let segment = only_wal_segment(&dir);
    let intact = fs::read(&segment).unwrap();
    fs::write(&segment, &intact[..intact.len() - 7]).unwrap();

    let first = recovered_state(&dir);
    let second = recovered_state(&dir);
    assert_eq!(first, second);
    // The torn op 3 is gone; ops 1..=2 survive.
    assert_eq!(first, reference_state(2));
    // The debris was swept by the first recovery.
    assert!(
        !dir.join("checkpoints")
            .join("ckpt-00000000000000000003.ckpt.tmp")
            .exists(),
        ".tmp debris must be swept on open"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replay_divergence_from_a_changed_udf_registry_is_surfaced() {
    use dd_grounding::{parse_rule, UdfRegistry};

    // A program with no tied-weight rules, so it builds under any registry;
    // the UDF dependency arrives later through an update.
    const UNTIED_PROGRAM: &str = r#"
        relation Claim(id: int, text: text) base.
        relation Fact(id: int) variable.
        rule F feature: Fact(id) :- Claim(id, text) weight = 1.0.
    "#;
    let dir = temp_dir("divergence");
    let build = |udfs: UdfRegistry| {
        let mut db = Database::new();
        db.create_table(
            "Claim",
            Schema::of(&[("id", DataType::Int), ("text", DataType::Text)]),
        )
        .unwrap();
        db.insert_all(
            "Claim",
            vec![Tuple::from_iter([Value::Int(1), Value::text("alpha")])],
        )
        .unwrap();
        DeepDive::builder()
            .program_text(UNTIED_PROGRAM)
            .database(db)
            .config(EngineConfig::fast())
            .udfs(udfs)
            .durability(DurabilityConfig::new(&dir))
            .build()
    };

    // Original run: the standard registry resolves `phrase`, and the tied
    // rule lands in the WAL only (the baseline checkpoint predates it).
    {
        let mut dd = build(standard_udfs()).unwrap();
        dd.initial_run().unwrap();
        let mut update = KbcUpdate::new();
        update.add_rule(
            parse_rule(
                "rule F2 feature: Fact(id) :- Claim(id, text) weight = phrase(text, text, text).",
            )
            .unwrap(),
        );
        dd.run_update(&update, ExecutionMode::Rerun).unwrap();
        assert!(dd.recovery_replay_errors().is_empty());
    }

    // Recovering with the same registry replays cleanly: nothing to report.
    {
        let dd = build(standard_udfs()).unwrap();
        assert!(dd.recovery_replay_errors().is_empty());
    }

    // Recovering with a different registry makes the logged update
    // un-replayable; the divergence must be surfaced, not silently dropped.
    let dd = build(UdfRegistry::new()).unwrap();
    let errors = dd.recovery_replay_errors();
    assert_eq!(
        errors.len(),
        1,
        "exactly the update op diverges: {errors:?}"
    );
    assert!(
        errors[0].contains("phrase"),
        "the error names the missing UDF: {}",
        errors[0]
    );
    let _ = fs::remove_dir_all(&dir);
}

// ----------------------------------------------------- auto-checkpoint policy

/// The newest WAL sequence any checkpoint file in `dir` covers (filenames
/// are `ckpt-<covered seq>.ckpt`); the baseline checkpoint the builder
/// writes on a pristine open covers sequence 0.
fn newest_covered_seq(dir: &Path) -> u64 {
    fs::read_dir(dir.join("checkpoints"))
        .unwrap()
        .filter_map(|entry| {
            let name = entry.unwrap().file_name().into_string().unwrap();
            name.strip_prefix("ckpt-")?
                .strip_suffix(".ckpt")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .expect("at least the baseline checkpoint exists")
}

/// Without a policy, nothing checkpoints behind the caller's back: after the
/// whole op sequence only the builder's baseline checkpoint (covering seq 0)
/// exists.
#[test]
fn manual_only_engines_never_checkpoint_automatically() {
    let dir = temp_dir("manual-only");
    {
        let mut dd = durable(&dir);
        for op in 1..=NUM_OPS {
            apply_op(&mut dd, op);
        }
    }
    assert_eq!(newest_covered_seq(&dir), 0, "only the baseline checkpoint");
    let _ = fs::remove_dir_all(&dir);
}

/// `checkpoint_every_records(2)` checkpoints after every second logged
/// operation, bounding the replay window, and the recovered state stays
/// byte-identical to a never-crashed reference engine.
#[test]
fn records_policy_checkpoints_automatically_and_recovers_exactly() {
    let dir = temp_dir("auto-records");
    {
        let mut dd = DeepDive::builder()
            .program_text(PROGRAM)
            .database(database())
            .config(EngineConfig::fast())
            .durability(
                DurabilityConfig::new(&dir)
                    .fsync(FsyncPolicy::Never)
                    .checkpoint_every_records(2),
            )
            .build()
            .unwrap();
        for op in 1..=NUM_OPS {
            apply_op(&mut dd, op);
        }
        // 7 logged records, trigger every 2: auto-checkpoints covered seqs
        // 2, 4, and 6 — the newest on disk must cover 6, with one record
        // (seq 7) left for replay.
        assert_eq!(newest_covered_seq(&dir), 6);
    }
    let (epoch, bytes) = recovered_state(&dir);
    let (want_epoch, want_bytes) = reference_state(NUM_OPS);
    assert_eq!(epoch, want_epoch);
    assert_eq!(
        bytes, want_bytes,
        "auto-checkpointed recovery is byte-exact"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// `checkpoint_every_bytes(1)` is the most aggressive byte policy: every
/// state-changing call ends in a checkpoint, so the WAL never needs replay.
#[test]
fn bytes_policy_checkpoints_after_every_operation() {
    let dir = temp_dir("auto-bytes");
    {
        let mut dd = DeepDive::builder()
            .program_text(PROGRAM)
            .database(database())
            .config(EngineConfig::fast())
            .durability(
                DurabilityConfig::new(&dir)
                    .fsync(FsyncPolicy::Never)
                    .checkpoint_every_bytes(1),
            )
            .build()
            .unwrap();
        for op in 1..=5 {
            apply_op(&mut dd, op);
            // Every op crosses the 1-byte threshold immediately, so the
            // newest checkpoint always covers the op just logged.
            assert_eq!(newest_covered_seq(&dir), op);
        }
    }
    let (epoch, bytes) = recovered_state(&dir);
    let (want_epoch, want_bytes) = reference_state(5);
    assert_eq!(epoch, want_epoch);
    assert_eq!(bytes, want_bytes);
    let _ = fs::remove_dir_all(&dir);
}

/// A manual checkpoint resets the policy counters: the window restarts from
/// the manual call, so the next auto-trigger lands `n` records later.
#[test]
fn manual_checkpoints_restart_the_policy_window() {
    let dir = temp_dir("auto-restart");
    {
        let mut dd = DeepDive::builder()
            .program_text(PROGRAM)
            .database(database())
            .config(EngineConfig::fast())
            .durability(
                DurabilityConfig::new(&dir)
                    .fsync(FsyncPolicy::Never)
                    .checkpoint_every_records(3),
            )
            .build()
            .unwrap();
        apply_op(&mut dd, 1);
        apply_op(&mut dd, 2);
        assert_eq!(newest_covered_seq(&dir), 0, "2 of 3 records: not yet due");
        dd.checkpoint().unwrap(); // manual — covers seq 2, resets counters
        assert_eq!(newest_covered_seq(&dir), 2);
        apply_op(&mut dd, 3);
        apply_op(&mut dd, 4);
        assert_eq!(
            newest_covered_seq(&dir),
            2,
            "window restarted at the manual call"
        );
        apply_op(&mut dd, 5);
        assert_eq!(
            newest_covered_seq(&dir),
            5,
            "third record after the reset triggers"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------- measurement

/// Prints the numbers quoted in PERFORMANCE.md ("Durability cost" section):
/// checkpoint size, WAL size, and wall-clock recovery time for the two
/// recovery paths (checkpoint-load vs full-WAL replay).  Run with
/// `cargo test --release --test recovery -- --ignored recovery_timing --nocapture`.
#[test]
#[ignore = "measurement probe, not an assertion; run with --nocapture"]
fn recovery_timing() {
    use std::time::Instant;

    let dir = temp_dir("timing");
    {
        let mut dd = durable(&dir);
        for op in 1..=NUM_OPS {
            apply_op(&mut dd, op);
        }
        dd.checkpoint().unwrap();
    }
    let ckpt_bytes: u64 = fs::read_dir(dir.join("checkpoints"))
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .max()
        .unwrap();
    let start = Instant::now();
    let dd = durable(&dir);
    let from_checkpoint = start.elapsed();
    assert_eq!(dd.epoch(), reference_state(NUM_OPS).0);
    drop(dd);
    let _ = fs::remove_dir_all(&dir);

    let dir = temp_dir("timing-replay");
    let wal_bytes;
    {
        let mut dd = durable(&dir);
        for op in 1..=NUM_OPS {
            apply_op(&mut dd, op);
        }
        wal_bytes = fs::metadata(only_wal_segment(&dir)).unwrap().len();
    }
    let start = Instant::now();
    let dd = durable(&dir);
    let from_replay = start.elapsed();
    assert_eq!(dd.epoch(), reference_state(NUM_OPS).0);
    drop(dd);
    let _ = fs::remove_dir_all(&dir);

    println!("checkpoint size       : {ckpt_bytes} bytes");
    println!("WAL size ({NUM_OPS} ops)      : {wal_bytes} bytes");
    println!("recover from checkpoint: {from_checkpoint:?}");
    println!("recover by full replay : {from_replay:?}");
}

// ------------------------------------------------------------------- soak

/// Kill-loop soak: repeatedly crash a child at every op boundary, with and
/// without mid-stream checkpoints, recovering and verifying each time.
/// Ignored by default; the CI recovery job runs it with `--ignored`.
#[test]
#[ignore = "kill-loop soak; run explicitly with --ignored"]
fn kill_loop_soak_recovers_every_time() {
    for round in 0..3u64 {
        for crash_after in 1..=NUM_OPS {
            // Round 0: no checkpoint.  Later rounds: checkpoint mid-stream.
            let checkpoint_after = (round > 0).then(|| round.min(crash_after));
            let dir = temp_dir(&format!("soak{round}-{crash_after}"));
            spawn_crashing_child(&dir, crash_after, checkpoint_after);
            let (epoch, bytes) = recovered_state(&dir);
            let (want_epoch, want_bytes) = reference_state(crash_after);
            assert_eq!(
                epoch, want_epoch,
                "soak round {round}, crash after op {crash_after}"
            );
            assert_eq!(
                bytes, want_bytes,
                "soak round {round}, crash after op {crash_after}"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

//! Differential oracle for retraction-capable incremental grounding.
//!
//! Every op sequence (inserts, deletes, delete+insert flips, supervision
//! retractions, rule additions) is applied **incrementally** through
//! [`DeepDive::run_update`] and, after every single op, the engine's grounder
//! state is compared against a **from-scratch rebuild** over the net database:
//! same variables (by `(relation, tuple)` identity and role), same factors (by
//! weight description and literal structure), same derived tables, and the
//! published snapshot's fact set must equal the variable catalog exactly.
//!
//! The incremental path and the oracle share no grounding code path for
//! deletions: the engine runs DRed + Z-set deltas + swap-remove compaction,
//! the oracle grounds the final database from an empty graph.  Any divergence
//! — a leaked factor, a variable the sweep missed, a catalog entry the O(Δ)
//! publish failed to drop — shows up as a signature diff naming the exact
//! variable or factor.

use deepdive_repro::factorgraph::{FactorKind, Lit};
use deepdive_repro::grounding::{Grounder, Rule};
use deepdive_repro::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Base program: one candidate mapping, one feature rule, one positive
/// supervision rule.  `FE2`/`S2` (below) arrive mid-sequence via `add_rule`.
const BASE_PROGRAM: &str = r#"
    relation Link(a: int, b: int) base.
    relation Feat(a: int, f: text) base.
    relation Truth(a: int, b: int) base.
    relation Wrong(a: int, b: int) base.
    relation Cand(a: int, b: int) derived.
    relation Fact(a: int, b: int) variable.

    rule C1 candidate: Cand(a, b) :- Link(a, b).
    rule FE1 feature: Fact(a, b) :- Cand(a, b), Feat(a, f) weight = identity(f).
    rule S1 supervision+: Fact(a, b) :- Cand(a, b), Truth(a, b).
"#;

/// Rules addable mid-sequence (parsed once from the extended program).
const POOL_PROGRAM: &str = r#"
    relation Link(a: int, b: int) base.
    relation Feat(a: int, f: text) base.
    relation Truth(a: int, b: int) base.
    relation Wrong(a: int, b: int) base.
    relation Cand(a: int, b: int) derived.
    relation Fact(a: int, b: int) variable.

    rule C1 candidate: Cand(a, b) :- Link(a, b).
    rule FE1 feature: Fact(a, b) :- Cand(a, b), Feat(a, f) weight = identity(f).
    rule S1 supervision+: Fact(a, b) :- Cand(a, b), Truth(a, b).
    rule FE2 feature: Fact(a, b) :- Cand(a, b), Feat(b, f) weight = identity(f).
    rule S2 supervision-: Fact(a, b) :- Cand(a, b), Wrong(a, b).
"#;

fn pair(a: i64, b: i64) -> Tuple {
    Tuple::from_iter([Value::Int(a), Value::Int(b)])
}

fn feat(a: i64, f: &str) -> Tuple {
    Tuple::from_iter([Value::Int(a), Value::text(f)])
}

fn base_schemas() -> Vec<(&'static str, Schema)> {
    let ii = || Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
    vec![
        ("Link", ii()),
        (
            "Feat",
            Schema::of(&[("a", DataType::Int), ("f", DataType::Text)]),
        ),
        ("Truth", ii()),
        ("Wrong", ii()),
    ]
}

/// Deterministic splitmix-style generator: no external crates, same sequence
/// on every platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The logical state the oracle rebuilds from: net base-fact counts, rules
/// added so far, and heads whose supervision has been retracted (sticky).
#[derive(Default)]
struct Model {
    counts: BTreeMap<(&'static str, Tuple), i64>,
    added_rules: Vec<Rule>,
    suppressed: BTreeSet<(&'static str, Tuple)>,
}

impl Model {
    fn insert(&mut self, rel: &'static str, t: Tuple) {
        *self.counts.entry((rel, t)).or_insert(0) += 1;
    }

    fn present(&self) -> Vec<(&'static str, Tuple)> {
        self.counts
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|((r, t), _)| (*r, t.clone()))
            .collect()
    }
}

/// From-scratch rebuild: fresh grounder over the net database with all rules,
/// then the sticky supervision suppressions applied in place.
fn oracle(model: &Model) -> Grounder {
    let mut program = parse_program(BASE_PROGRAM).expect("base program parses");
    for rule in &model.added_rules {
        program = program.rule(rule.clone());
    }
    let mut db = Database::new();
    for (rel, schema) in base_schemas() {
        db.create_table(rel, schema).unwrap();
    }
    for ((rel, t), &n) in &model.counts {
        if n > 0 {
            db.table_mut(rel)
                .unwrap()
                .insert_with_count(t.clone(), n)
                .unwrap();
        }
    }
    let mut g = Grounder::new(program, db, standard_udfs()).expect("oracle grounder builds");
    g.ground().expect("oracle grounds");
    for (rel, t) in &model.suppressed {
        g.apply_supervision_retraction(rel, t);
    }
    g
}

/// Canonical, id-free description of a grounder's state: every line names a
/// variable (with role), a factor (weight description + literal structure,
/// with multiplicity), or a derived-table row (with count).  Two grounders
/// are equivalent iff their signatures are equal, regardless of the variable
/// and factor ids their histories assigned.
fn signature(g: &Grounder) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut rev: HashMap<usize, String> = HashMap::new();
    for ((rel, tuple), &v) in g.variable_catalog() {
        rev.insert(v, format!("{rel}({tuple})"));
        out.insert(format!(
            "var {rel}({tuple}) role={:?}",
            g.graph().variable(v).role
        ));
    }
    assert_eq!(
        rev.len(),
        g.graph().num_variables(),
        "every graph variable must be catalogued"
    );

    let lit = |l: &Lit| format!("{}{}", if l.positive { '+' } else { '-' }, rev[&l.var]);
    let lits = |ls: &[Lit]| {
        let mut v: Vec<String> = ls.iter().map(lit).collect();
        v.sort();
        v.join(",")
    };
    let mut factors: BTreeMap<String, usize> = BTreeMap::new();
    for f in g.graph().factors() {
        let w = g.graph().weight(f.weight_id);
        let kind = match &f.kind {
            FactorKind::Conjunction(ls) => format!("conj[{}]", lits(ls)),
            FactorKind::Imply { body, head } => {
                format!("imply[{} => {}]", lits(body), lit(head))
            }
            FactorKind::Equal(a, b) => {
                let (mut x, mut y) = (rev[a].clone(), rev[b].clone());
                if x > y {
                    std::mem::swap(&mut x, &mut y);
                }
                format!("equal[{x},{y}]")
            }
            FactorKind::IsTrue(v) => format!("istrue[{}]", rev[v]),
            FactorKind::Aggregate {
                head,
                semantics,
                groundings,
            } => {
                let mut gs: Vec<String> = groundings.iter().map(|g| lits(g)).collect();
                gs.sort();
                format!("agg[{} {:?} {}]", lit(head), semantics, gs.join(";"))
            }
        };
        *factors
            .entry(format!(
                "factor `{}` fixed={} {kind}",
                w.description, w.fixed
            ))
            .or_insert(0) += 1;
    }
    out.extend(factors.into_iter().map(|(line, n)| format!("{line} x{n}")));

    for rel in ["Link", "Feat", "Truth", "Wrong", "Cand", "Fact"] {
        if let Ok(table) = g.database().table(rel) {
            for (tuple, n) in table.iter_counted() {
                if n != 0 {
                    out.insert(format!("row {rel}({tuple}) x{n}"));
                }
            }
        }
    }
    out
}

fn build_engine(initial: &[(&'static str, Tuple)], model: &mut Model) -> DeepDive {
    let mut db = Database::new();
    for (rel, schema) in base_schemas() {
        db.create_table(rel, schema).unwrap();
    }
    for (rel, t) in initial {
        db.insert(rel, t.clone()).unwrap();
        model.insert(rel, t.clone());
    }
    DeepDive::builder()
        .program_text(BASE_PROGRAM)
        .database(db)
        .udfs(standard_udfs())
        .config(fast_config())
        .build()
        .expect("engine builds")
}

/// Even smaller than `EngineConfig::fast()`: the oracle comparison runs
/// thousands of full-Gibbs updates, and marginal quality is irrelevant here.
fn fast_config() -> EngineConfig {
    let mut config = EngineConfig::fast();
    config.gibbs = GibbsOptions::new(40, 8, 7);
    config.learn = LearnOptions {
        epochs: 2,
        sweeps_per_epoch: 2,
        ..config.learn
    };
    config
}

/// After every op: grounder state matches the from-scratch oracle, and the
/// published snapshot's fact set matches the variable catalog (the O(Δ)
/// sharded publish dropped exactly the retracted entries).
fn check_equivalence(dd: &DeepDive, model: &Model, context: &str) {
    let live = signature(dd.grounder());
    let want = signature(&oracle(model));
    if live != want {
        let missing: Vec<&String> = want.difference(&live).collect();
        let extra: Vec<&String> = live.difference(&want).collect();
        panic!(
            "{context}: incremental state diverged from from-scratch oracle\n  missing: {missing:#?}\n  extra: {extra:#?}"
        );
    }

    let snap = dd.snapshot();
    let catalog: BTreeSet<(String, Tuple)> = dd
        .grounder()
        .variable_catalog()
        .map(|((r, t), _)| (r.clone(), t.clone()))
        .collect();
    let served: BTreeSet<(String, Tuple)> = snap
        .all_facts(0.0, 0, usize::MAX)
        .into_iter()
        .map(|(r, t, _)| (r.to_string(), t))
        .collect();
    assert_eq!(
        served, catalog,
        "{context}: published snapshot diverged from the variable catalog"
    );
    assert_eq!(snap.num_catalogued_variables(), catalog.len());
}

fn pool_rules() -> Vec<Rule> {
    let pool = parse_program(POOL_PROGRAM).expect("pool program parses");
    pool.rules
        .into_iter()
        .filter(|r| r.name == "FE2" || r.name == "S2")
        .collect()
}

/// One seeded random op sequence, incrementally applied and oracle-checked
/// after every op.
fn run_sequence(seed: u64, ops: usize) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF);
    let mut model = Model::default();

    // Universes the ops draw from.
    let pairs: Vec<Tuple> = (0..4)
        .flat_map(|a| (a + 1..4).map(move |b| pair(a, b)))
        .collect();
    let feats: Vec<Tuple> = (0..4)
        .flat_map(|a| ["fA", "fB"].map(|f| feat(a, f)))
        .collect();
    let mut pool = pool_rules();

    // Seed-dependent initial corpus.
    let mut initial = vec![
        ("Link", pairs[rng.below(pairs.len())].clone()),
        ("Link", pairs[rng.below(pairs.len())].clone()),
        ("Feat", feats[rng.below(feats.len())].clone()),
        ("Truth", pairs[rng.below(pairs.len())].clone()),
    ];
    if rng.below(2) == 0 {
        initial.push(("Wrong", pairs[rng.below(pairs.len())].clone()));
    }
    let mut dd = build_engine(&initial, &mut model);
    dd.initial_run().expect("initial run");
    check_equivalence(&dd, &model, &format!("seed {seed} initial"));

    for step in 0..ops {
        let mut update = KbcUpdate::new();
        let present = model.present();
        let describe;
        match rng.below(10) {
            // Insert a random base fact (duplicates allowed: counted rows).
            0..=3 => {
                let (rel, t) = match rng.below(4) {
                    0 => ("Link", pairs[rng.below(pairs.len())].clone()),
                    1 => ("Feat", feats[rng.below(feats.len())].clone()),
                    2 => ("Truth", pairs[rng.below(pairs.len())].clone()),
                    _ => ("Wrong", pairs[rng.below(pairs.len())].clone()),
                };
                update.insert(rel, t.clone());
                model.insert(rel, t.clone());
                describe = format!("insert {rel}({t})");
            }
            // Delete one currently-present base fact.
            4..=6 => {
                if present.is_empty() {
                    continue;
                }
                let (rel, t) = present[rng.below(present.len())].clone();
                update.delete(rel, t.clone());
                *model.counts.get_mut(&(rel, t.clone())).unwrap() -= 1;
                describe = format!("delete {rel}({t})");
            }
            // Flip: delete one present fact and insert another in one update.
            7 => {
                if present.is_empty() {
                    continue;
                }
                let (rel, t) = present[rng.below(present.len())].clone();
                update.delete(rel, t.clone());
                *model.counts.get_mut(&(rel, t.clone())).unwrap() -= 1;
                let t2 = pairs[rng.below(pairs.len())].clone();
                update.insert("Link", t2.clone());
                model.insert("Link", t2.clone());
                describe = format!("flip -{rel}({t}) +Link({t2})");
            }
            // Retract supervision for a random head (sticky suppression).
            8 => {
                let t = pairs[rng.below(pairs.len())].clone();
                update.retract_supervision("Fact", t.clone());
                model.suppressed.insert(("Fact", t.clone()));
                describe = format!("retract-supervision Fact({t})");
            }
            // Add a rule from the pool.
            _ => {
                if pool.is_empty() {
                    continue;
                }
                let rule = pool.remove(0);
                describe = format!("add-rule {}", rule.name);
                update.add_rule(rule.clone());
                model.added_rules.push(rule);
            }
        }
        dd.run_update(&update, ExecutionMode::Incremental)
            .unwrap_or_else(|e| panic!("seed {seed} step {step} ({describe}): {e}"));
        check_equivalence(
            &dd,
            &model,
            &format!("seed {seed} step {step} ({describe})"),
        );
    }
}

/// The headline proof: 200 seeded random insert/delete/flip/retract/add-rule
/// sequences, each op applied through `run_update` and checked against the
/// from-scratch oracle.  Split into four tests so the harness runs them on
/// separate threads.
#[test]
fn differential_oracle_seeds_0_to_49() {
    for seed in 0..50 {
        run_sequence(seed, 6);
    }
}

#[test]
fn differential_oracle_seeds_50_to_99() {
    for seed in 50..100 {
        run_sequence(seed, 6);
    }
}

#[test]
fn differential_oracle_seeds_100_to_149() {
    for seed in 100..150 {
        run_sequence(seed, 6);
    }
}

#[test]
fn differential_oracle_seeds_150_to_199() {
    for seed in 150..200 {
        run_sequence(seed, 6);
    }
}

/// Longer soak: more seeds, deeper sequences.  Run with
/// `cargo test --test retraction -- --ignored`.
#[test]
#[ignore = "soak: ~10x the default oracle run"]
fn differential_oracle_soak() {
    for seed in 200..600 {
        run_sequence(seed, 16);
    }
}

/// Deleting a base fact that was never inserted is a *typed* grounding error
/// (`GroundingError::Retraction` surfaced as `EngineError::Grounding`), not a
/// silent skip: there is no `skipped_deletions` counter to quietly absorb it.
#[test]
fn nonapplicable_deletion_is_a_typed_error() {
    let mut model = Model::default();
    let mut dd = build_engine(
        &[
            ("Link", pair(0, 1)),
            ("Feat", feat(0, "fA")),
            ("Truth", pair(0, 1)),
        ],
        &mut model,
    );
    dd.initial_run().expect("initial run");

    // Truth(0,1) exists once; deleting it twice in one update retracts more
    // derivations of S1's grounding than exist.
    let mut update = KbcUpdate::new();
    update.delete("Truth", pair(0, 1));
    update.delete("Truth", pair(0, 1));
    let err = dd
        .run_update(&update, ExecutionMode::Incremental)
        .expect_err("over-deletion must be rejected");
    match err {
        EngineError::Grounding(g) => {
            let msg = g.to_string();
            assert!(
                msg.contains("cannot retract"),
                "expected a typed retraction error, got: {msg}"
            );
        }
        other => panic!("expected EngineError::Grounding, got: {other}"),
    }
}

/// The public `DeepDive::retract_supervision` entry point: un-pins the
/// evidence variable in the published snapshot and suppresses future labels.
#[test]
fn engine_retract_supervision_unpins_the_variable() {
    let mut model = Model::default();
    let mut dd = build_engine(
        &[
            ("Link", pair(0, 1)),
            ("Feat", feat(0, "fA")),
            ("Truth", pair(0, 1)),
        ],
        &mut model,
    );
    dd.initial_run().expect("initial run");
    let var = dd.grounder().variable_for("Fact", &pair(0, 1)).unwrap();
    assert!(dd.graph().variable(var).is_evidence());
    let before = dd.snapshot();

    dd.retract_supervision("Fact", pair(0, 1))
        .expect("retraction applies");
    model.suppressed.insert(("Fact", pair(0, 1)));
    check_equivalence(&dd, &model, "engine retract_supervision");

    let var = dd.grounder().variable_for("Fact", &pair(0, 1)).unwrap();
    assert!(
        !dd.graph().variable(var).is_evidence(),
        "retraction must un-pin the supervision label"
    );
    assert!(dd.grounder().is_supervision_suppressed("Fact", &pair(0, 1)));

    // Re-deriving the same supervision must stay suppressed (sticky).
    let mut update = KbcUpdate::new();
    update.insert("Truth", pair(0, 1));
    model.insert("Truth", pair(0, 1));
    dd.run_update(&update, ExecutionMode::Incremental)
        .expect("update applies");
    let var = dd.grounder().variable_for("Fact", &pair(0, 1)).unwrap();
    assert!(
        !dd.graph().variable(var).is_evidence(),
        "suppression is sticky across re-derivation"
    );

    // The pre-retraction snapshot still serves the pinned state.
    assert_eq!(before.epoch(), 1);
    assert!(before.probability_of("Fact", &pair(0, 1)).is_some());
}

/// Insert-then-delete round-trips the *engine* back to the original published
/// state: same catalog, same fact set, no orphaned factors.
#[test]
fn engine_insert_delete_round_trip() {
    let mut model = Model::default();
    let mut dd = build_engine(&[("Link", pair(0, 1)), ("Feat", feat(0, "fA"))], &mut model);
    dd.initial_run().expect("initial run");
    let baseline = signature(dd.grounder());

    let mut grow = KbcUpdate::new();
    grow.insert("Link", pair(2, 3));
    grow.insert("Feat", feat(2, "fB"));
    dd.run_update(&grow, ExecutionMode::Incremental)
        .expect("growth applies");
    assert_ne!(signature(dd.grounder()), baseline);

    let mut shrink = KbcUpdate::new();
    shrink.delete("Link", pair(2, 3));
    shrink.delete("Feat", feat(2, "fB"));
    dd.run_update(&shrink, ExecutionMode::Incremental)
        .expect("shrink applies");
    assert_eq!(
        signature(dd.grounder()),
        baseline,
        "insert-then-delete must round-trip to the original state"
    );
    check_equivalence(&dd, &model, "round trip");
}

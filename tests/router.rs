//! Differential oracle for the sharded router: a 4-shard cluster behind the
//! scatter-gather front door must answer **byte-identically** to a single
//! unsharded engine fed the same program and data.
//!
//! The trick that makes "byte-identical" testable at all: every variable in
//! the oracle program is pinned by exact supervision (`supervision+` forces
//! probability 1.0, `supervision-` forces 0.0), so marginals are exact
//! constants and no sampling noise can leak into the comparison.  Both sides
//! are driven through real TCP servers with the *same* wire batches, and the
//! full `results` vectors are compared with `==` — exact `f64`s included.
//!
//! The suite also pins the operational contracts that have no unsharded
//! counterpart: the cross-shard epoch vector (only touched shards advance),
//! typed `shard_unavailable` degradation when a shard dies (never a hang),
//! and keyed reads that keep working on surviving shards.

use deepdive_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 4;
const DOCS: i64 = 8;
const IDS_PER_DOC: i64 = 4;

/// Every claim carries an exact label: even ids are true (probability 1.0),
/// odd ids are false (probability 0.0).  `min_probability = 0.5` separates
/// the classes in every query below.
const PROGRAM: &str = "\
    relation Claim(doc: int, id: int) base.\n\
    relation Pos(doc: int, id: int) base.\n\
    relation Neg(doc: int, id: int) base.\n\
    relation Fact(doc: int, id: int) variable.\n\
    rule F feature: Fact(doc, id) :- Claim(doc, id) weight = 1.5.\n\
    rule SP supervision+: Fact(doc, id) :- Claim(doc, id), Pos(doc, id).\n\
    rule SN supervision-: Fact(doc, id) :- Claim(doc, id), Neg(doc, id).\n";

fn key(doc: i64, id: i64) -> Tuple {
    Tuple::from_iter([Value::Int(doc), Value::Int(id)])
}

fn label_of(id: i64) -> &'static str {
    if id % 2 == 0 {
        "Pos"
    } else {
        "Neg"
    }
}

/// Claims and their labels always travel together, so the supervision
/// invariant (every present claim is labelled) holds after every update.
fn insert_claim(update: &mut KbcUpdate, doc: i64, id: i64) {
    update.insert("Claim", key(doc, id));
    update.insert(label_of(id), key(doc, id));
}

fn delete_claim(update: &mut KbcUpdate, doc: i64, id: i64) {
    update.delete("Claim", key(doc, id));
    update.delete(label_of(id), key(doc, id));
}

fn corpus() -> Database {
    let mut db = Database::new();
    let schema = || Schema::of(&[("doc", DataType::Int), ("id", DataType::Int)]);
    for table in ["Claim", "Pos", "Neg"] {
        db.create_table(table, schema()).expect("fresh table");
    }
    for doc in 0..DOCS {
        for id in 0..IDS_PER_DOC {
            db.insert("Claim", key(doc, id)).expect("seed row");
            db.insert(label_of(id), key(doc, id)).expect("seed label");
        }
    }
    db
}

fn cluster(shards: usize) -> Cluster {
    let mut config = ClusterConfig::new(shards);
    config.engine = EngineConfig::fast();
    let cluster =
        Cluster::build(PROGRAM, &corpus(), &standard_udfs(), &config).expect("cluster builds");
    cluster.initial_run().expect("initial run");
    cluster
}

fn reference() -> DeepDive {
    let mut engine = DeepDive::builder()
        .program_text(PROGRAM)
        .database(corpus())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("reference builds");
    engine.initial_run().expect("reference initial run");
    engine
}

/// The read workload both sides must answer identically: every op kind the
/// router supports, with windows chosen to straddle shard boundaries.
fn probe_ops() -> Vec<Op> {
    let mut ops = vec![Op::Relations, Op::Stats];
    // Keyed hits and misses, true and false facts.
    for (doc, id) in [(0, 0), (0, 1), (3, 2), (7, 3), (99, 0)] {
        ops.push(Op::probability_of("Fact", key(doc, id)));
    }
    // Unranked pagination across the merged stream.
    for (offset, limit) in [(0usize, 1_000usize), (0, 3), (5, 4), (13, 7), (500, 5)] {
        ops.push(Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.5,
                top_k: None,
                offset,
                limit: Some(limit),
            },
        });
    }
    // Ranked top-k (ties everywhere: all true facts sit at 1.0, so the
    // tuple-order tiebreak is what this exercises), plus a paginated rank.
    for (k, offset, limit) in [(1usize, 0usize, None), (6, 0, None), (9, 2, Some(4usize))] {
        ops.push(Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.0,
                top_k: Some(k),
                offset,
                limit,
            },
        });
    }
    // Threshold + top-k: served from each shard's ranked prefix.  The seed
    // corpus holds 16 true facts spread over 4 shards (~4 each), so k = 10
    // exhausts every shard's local prefix and the front door's re-merge must
    // still produce the global top-10; k = 1000 exhausts the global answer
    // too, and min_probability = 1.5 makes every prefix empty.
    for (min_p, k, offset, limit) in [
        (0.5, 2usize, 0usize, None),
        (0.5, 10, 0, None),
        (0.5, 1_000, 0, None),
        (0.5, 10, 3, Some(4usize)),
        (1.5, 5, 0, None),
    ] {
        ops.push(Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: min_p,
                top_k: Some(k),
                offset,
                limit,
            },
        });
    }
    // Unfiltered scan: both probability classes, full and windowed.
    ops.push(Op::AllFacts {
        min_probability: 0.0,
        offset: 0,
        limit: 10_000,
    });
    ops.push(Op::AllFacts {
        min_probability: 0.5,
        offset: 3,
        limit: 6,
    });
    ops
}

/// Drive the same batch through both front doors and demand identical
/// `results` (epochs differ by construction: one side is a vector).
fn assert_identical(reference: &mut Client, routed: &mut Client, context: &str) {
    let ops = probe_ops();
    let expected = reference
        .batch(ops.clone())
        .expect("reference server answers");
    let got = routed.batch(ops).expect("routed server answers");
    assert_eq!(
        got.results, expected.results,
        "sharded answers diverged from the unsharded engine ({context})"
    );
    let epochs = got.epochs.expect("the front door reports its epoch vector");
    assert_eq!(epochs.len(), SHARDS, "one entry per shard ({context})");
    assert!(
        epochs.iter().all(|e| e.is_some()),
        "broadcast probes consult every shard ({context})"
    );
    assert!(
        expected.epochs.is_none(),
        "direct servers do not fake a vector ({context})"
    );
}

/// A mixed update batch: new docs, new ids on old docs, deletions of seed
/// rows — touching several (but not all) shards at once.
fn mixed_update(round: i64) -> KbcUpdate {
    let mut update = KbcUpdate::new();
    let doc = DOCS + round;
    for id in 0..IDS_PER_DOC {
        insert_claim(&mut update, doc, id);
    }
    insert_claim(&mut update, round % DOCS, IDS_PER_DOC + round);
    delete_claim(&mut update, (round + 1) % DOCS, round % IDS_PER_DOC);
    update
}

#[test]
fn a_four_shard_cluster_is_byte_identical_to_one_engine() {
    let cluster = cluster(SHARDS);
    let front = cluster
        .serve_front(
            "127.0.0.1:0",
            RouterConfig::default(),
            ServerConfig::default(),
            2,
        )
        .expect("front door binds");

    let mut engine = reference();
    let direct = Server::bind("127.0.0.1:0", engine.reader(), ServerConfig::default())
        .expect("direct server binds");

    let mut ref_client = Client::connect(direct.local_addr()).expect("connect direct");
    let mut routed_client = Client::connect(front.local_addr()).expect("connect front");

    assert_identical(&mut ref_client, &mut routed_client, "after initial run");

    for round in 0..4 {
        let update = mixed_update(round);
        engine
            .run_update(&update, ExecutionMode::Incremental)
            .expect("reference update");
        cluster
            .run_update(&update, ExecutionMode::Incremental)
            .expect("cluster update");
        assert_identical(
            &mut ref_client,
            &mut routed_client,
            &format!("after update round {round}"),
        );
    }

    front.shutdown();
    direct.shutdown();
}

#[test]
fn live_updates_advance_only_the_owning_shard_and_serve_immediately() {
    let cluster = cluster(SHARDS);
    let mut router = cluster.router(RouterConfig::default()).expect("router");

    let before = cluster.epochs();
    let mut update = KbcUpdate::new();
    insert_claim(&mut update, 1_000, 0);
    let reports = cluster
        .run_update(&update, ExecutionMode::Incremental)
        .expect("single-doc update");
    let touched: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().map(|_| i))
        .collect();
    assert_eq!(touched.len(), 1, "one document maps to one shard");
    let owner = touched[0];

    let after = cluster.epochs();
    for shard in 0..SHARDS {
        if shard == owner {
            assert_eq!(after[shard], before[shard] + 1, "owner publishes");
        } else {
            assert_eq!(after[shard], before[shard], "bystanders stand still");
        }
    }

    // The routed read sees the new fact at its exact supervised probability,
    // and the keyed op's epoch vector marks only the owner as consulted.
    let batch = router
        .batch(&[Op::probability_of("Fact", key(1_000, 0))])
        .expect("routed read");
    assert_eq!(batch.results, vec![OpResult::Probability(Some(1.0))]);
    for (shard, epoch) in batch.epochs.iter().enumerate() {
        assert_eq!(
            epoch.is_some(),
            shard == owner,
            "keyed ops consult exactly the owner"
        );
    }

    // Supervision retraction routes to the same owner and frees the label.
    cluster
        .retract_supervision("Fact", key(1_000, 0))
        .expect("retract routes to the owner");
    let again = cluster.epochs();
    assert_eq!(again[owner], after[owner] + 1, "retraction publishes there");
    for shard in 0..SHARDS {
        if shard != owner {
            assert_eq!(again[shard], after[shard], "others untouched");
        }
    }
    let freed = router
        .batch(&[Op::probability_of("Fact", key(1_000, 0))])
        .expect("routed read after retraction");
    let OpResult::Probability(Some(p)) = freed.results[0] else {
        panic!("the variable survives retraction as an open query");
    };
    assert!(
        (0.0..1.0).contains(&p),
        "an unpinned variable is no longer certain, got {p}"
    );
}

#[test]
fn a_killed_shard_degrades_into_typed_errors_not_hangs() {
    let mut cluster = cluster(SHARDS);
    let front = cluster
        .serve_front(
            "127.0.0.1:0",
            RouterConfig::default(),
            ServerConfig::default(),
            1,
        )
        .expect("front door binds");
    let mut client = Client::connect(front.local_addr()).expect("connect front");

    // Find one tuple owned by the doomed shard and one owned elsewhere.
    let assignment = cluster.assignment().clone();
    let doomed = 0usize;
    let mut on_doomed = None;
    let mut on_survivor = None;
    for doc in 0..DOCS {
        let shard = assignment.shard_of(&key(doc, 0), SHARDS).expect("routable");
        if shard == doomed && on_doomed.is_none() {
            on_doomed = Some(key(doc, 0));
        }
        if shard != doomed && on_survivor.is_none() {
            on_survivor = Some(key(doc, 0));
        }
    }
    let (on_doomed, on_survivor) = (on_doomed.unwrap(), on_survivor.unwrap());

    cluster.kill_shard(doomed);
    assert!(!cluster.is_alive(doomed));

    // Broadcast reads need every shard: typed refusal, with the shard named.
    let err = client
        .batch(vec![Op::Relations])
        .expect_err("broadcasts cannot silently skip a shard");
    let ClientError::Server { kind, message } = err else {
        panic!("expected a typed wire refusal, got a transport error");
    };
    assert_eq!(kind.to_string(), "shard_unavailable");
    assert!(message.contains("shard 0"), "names the culprit: {message}");

    // Keyed reads: dead owner is a typed error, live owners keep serving.
    let err = client
        .batch(vec![Op::probability_of("Fact", on_doomed)])
        .expect_err("the dead owner is unavailable");
    let ClientError::Server { kind, .. } = err else {
        panic!("expected a typed wire refusal");
    };
    assert_eq!(kind.to_string(), "shard_unavailable");

    let alive = client
        .batch(vec![Op::probability_of("Fact", on_survivor)])
        .expect("surviving shards keep answering keyed reads");
    assert_eq!(alive.results, vec![OpResult::Probability(Some(1.0))]);

    front.shutdown();
}

/// The window-widening contract of the top-k re-merge: when `k` exceeds a
/// shard's matching-fact count, that shard's ranked prefix is *exhausted*
/// (it returns everything it has) and the front door must still assemble the
/// exact global top-k from the short prefixes.  The test skews one shard
/// extra-sparse with a deletion round first, verifies per-shard counts to
/// prove the exhaustion actually happens, then compares against the
/// unsharded engine byte for byte.
#[test]
fn top_k_re_merge_widens_over_exhausted_shard_prefixes() {
    let cluster = cluster(SHARDS);
    let mut router = cluster.router(RouterConfig::default()).expect("router");
    let mut engine = reference();

    // Delete every true (even-id) claim of doc 0: its owning shard now holds
    // strictly fewer true facts than its peers.
    let mut update = KbcUpdate::new();
    for id in (0..IDS_PER_DOC).filter(|id| id % 2 == 0) {
        delete_claim(&mut update, 0, id);
    }
    engine
        .run_update(&update, ExecutionMode::Incremental)
        .expect("reference update");
    cluster
        .run_update(&update, ExecutionMode::Incremental)
        .expect("cluster update");

    // Per-shard true-fact census from the reference engine's own answer.
    let truths: Vec<Tuple> = engine
        .snapshot()
        .facts("Fact")
        .min_probability(0.5)
        .run()
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let assignment = cluster.assignment().clone();
    let mut per_shard = vec![0usize; SHARDS];
    for t in &truths {
        per_shard[assignment.shard_of(t, SHARDS).expect("routable")] += 1;
    }
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "census must cover every shard for the probe to mean anything: {per_shard:?}"
    );

    // k = the global count: every shard holds fewer than k matching facts,
    // so every local prefix is exhausted, yet the global answer is complete.
    let k = truths.len();
    assert!(
        per_shard.iter().all(|&n| n < k),
        "k={k} must exceed every per-shard count {per_shard:?}"
    );
    for (offset, limit) in [(0usize, None), (2, Some(5usize))] {
        let snap = engine.snapshot();
        let expected = {
            let mut q = snap
                .facts("Fact")
                .min_probability(0.5)
                .top_k(k)
                .offset(offset);
            if let Some(l) = limit {
                q = q.limit(l);
            }
            q.run()
        };
        let routed = router
            .batch(&[Op::Query {
                relation: "Fact".to_string(),
                spec: FactQuerySpec {
                    min_probability: 0.5,
                    top_k: Some(k),
                    offset,
                    limit,
                },
            }])
            .expect("routed top-k");
        let OpResult::Facts(got) = &routed.results[0] else {
            panic!("query merges into facts");
        };
        assert_eq!(
            got, &expected,
            "exhausted-prefix re-merge diverged (offset={offset} limit={limit:?})"
        );
    }
}

/// Long randomized differential soak: hundreds of mixed insert/delete
/// updates over a 2-shard cluster, checked against the unsharded engine
/// after every round.  Slow by design; run with `--ignored`.
#[test]
#[ignore = "soak: minutes of randomized differential rounds"]
fn randomized_update_soak_stays_identical() {
    const ROUNDS: usize = 60;
    let cluster = {
        let mut config = ClusterConfig::new(2);
        config.engine = EngineConfig::fast();
        let cluster =
            Cluster::build(PROGRAM, &corpus(), &standard_udfs(), &config).expect("cluster");
        cluster.initial_run().expect("initial run");
        cluster
    };
    let mut engine = reference();
    let mut router = cluster.router(RouterConfig::default()).expect("router");

    // The soak's own bookkeeping of which claims exist, so deletions always
    // target live rows and labels stay paired with their claims.
    let mut live: Vec<(i64, i64)> = (0..DOCS)
        .flat_map(|doc| (0..IDS_PER_DOC).map(move |id| (doc, id)))
        .collect();
    let mut next_doc = DOCS;
    let mut rng = StdRng::seed_from_u64(0xdd_2015);

    for round in 0..ROUNDS {
        let mut update = KbcUpdate::new();
        for _ in 0..rng.gen_range(1..4usize) {
            if rng.gen_range(0..3usize) == 0 && live.len() > 4 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                delete_claim(&mut update, victim.0, victim.1);
            } else {
                let (doc, id) = if rng.gen_range(0..2usize) == 0 {
                    let fresh = (next_doc, rng.gen_range(0..IDS_PER_DOC));
                    next_doc += 1;
                    fresh
                } else {
                    (
                        rng.gen_range(0..next_doc),
                        next_doc + rng.gen_range(0..8i64),
                    )
                };
                if !live.contains(&(doc, id)) {
                    live.push((doc, id));
                    insert_claim(&mut update, doc, id);
                }
            }
        }
        if update.is_empty() {
            continue;
        }
        engine
            .run_update(&update, ExecutionMode::Incremental)
            .expect("reference update");
        cluster
            .run_update(&update, ExecutionMode::Incremental)
            .expect("cluster update");

        let expected: Vec<(String, Tuple, f64)> = engine
            .snapshot()
            .all_facts(0.0, 0, usize::MAX)
            .into_iter()
            .map(|(r, t, p)| (r.to_string(), t, p))
            .collect();
        let routed = router
            .batch(&[Op::AllFacts {
                min_probability: 0.0,
                offset: 0,
                limit: 1_000_000,
            }])
            .expect("routed scan");
        let OpResult::AllFacts(got) = &routed.results[0] else {
            panic!("all_facts merges into all_facts");
        };
        assert_eq!(
            got,
            &expected,
            "soak diverged at round {round} ({} live claims)",
            live.len()
        );
    }
}

//! The network front door, proven under real concurrency and hostile bytes.
//!
//! Mirrors `tests/serving.rs` *through the socket*: concurrent TCP clients
//! must observe only consistent, monotone epochs while `run_update` publishes
//! new ones — and on top of that, the wire layer must shrug off malformed
//! frames, truncated prefixes, oversized declarations, and random fuzz
//! without a panic or a wedged connection, and the bounded request queue must
//! refuse floods with a typed `overloaded` response and recover after the
//! drain.

use deepdive_repro::prelude::*;
use deepdive_repro::server::{protocol::Request, ErrorKind};
use deepdive_repro::wire::frame::{read_frame, write_frame, FrameError};
use deepdive_repro::wire::json::{parse, Json};
use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

const PROGRAM: &str = r#"
    relation Sentence(s: int, content: text) base.
    relation PersonCandidate(s: int, m: int, t: text) base.
    relation EL(m: int, e: text) base.
    relation Married(e1: text, e2: text) base.
    relation MarriedCandidate(m1: int, m2: int) derived.
    relation MarriedMentions(m1: int, m2: int) variable.

    rule R1 candidate:
      MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

    rule FE1 feature:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
        Sentence(s, content)
      weight = phrase(t1, t2, content).

    rule S1 supervision+:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"#;

fn engine() -> DeepDive {
    let mut db = Database::new();
    db.create_table(
        "Sentence",
        Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
    )
    .unwrap();
    db.create_table(
        "PersonCandidate",
        Schema::of(&[
            ("s", DataType::Int),
            ("m", DataType::Int),
            ("t", DataType::Text),
        ]),
    )
    .unwrap();
    db.create_table(
        "EL",
        Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
    )
    .unwrap();
    db.create_table(
        "Married",
        Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
    )
    .unwrap();
    db.insert_all(
        "Sentence",
        vec![
            Tuple::from_iter([
                Value::Int(1),
                Value::text("Barack and his wife Michelle attended the dinner"),
            ]),
            Tuple::from_iter([
                Value::Int(2),
                Value::text("George and his wife Laura were married"),
            ]),
        ],
    )
    .unwrap();
    db.insert_all(
        "PersonCandidate",
        vec![
            Tuple::from_iter([Value::Int(1), Value::Int(10), Value::text("Barack")]),
            Tuple::from_iter([Value::Int(1), Value::Int(11), Value::text("Michelle")]),
            Tuple::from_iter([Value::Int(2), Value::Int(20), Value::text("George")]),
            Tuple::from_iter([Value::Int(2), Value::Int(21), Value::text("Laura")]),
        ],
    )
    .unwrap();
    db.insert_all(
        "EL",
        vec![
            Tuple::from_iter([Value::Int(10), Value::text("Barack_Obama_1")]),
            Tuple::from_iter([Value::Int(11), Value::text("Michelle_Obama_1")]),
        ],
    )
    .unwrap();
    db.insert_all(
        "Married",
        vec![Tuple::from_iter([
            Value::text("Barack_Obama_1"),
            Value::text("Michelle_Obama_1"),
        ])],
    )
    .unwrap();

    DeepDive::builder()
        .program_text(PROGRAM)
        .database(db)
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds")
}

fn supervised() -> Tuple {
    Tuple::from_iter([Value::Int(10), Value::Int(11)])
}

/// One update per epoch: a fresh document introducing a new candidate pair.
fn update_for(i: i64) -> KbcUpdate {
    let (s, m1, m2) = (10 + i, 100 + 2 * i, 101 + 2 * i);
    let mut update = KbcUpdate::new();
    update
        .insert(
            "Sentence",
            Tuple::from_iter([
                Value::Int(s),
                Value::text(format!("Person{m1} and his wife Person{m2} appeared")),
            ]),
        )
        .insert(
            "PersonCandidate",
            Tuple::from_iter([
                Value::Int(s),
                Value::Int(m1),
                Value::text(format!("Person{m1}")),
            ]),
        )
        .insert(
            "PersonCandidate",
            Tuple::from_iter([
                Value::Int(s),
                Value::Int(m2),
                Value::text(format!("Person{m2}")),
            ]),
        );
    update
}

/// A reader over a tiny synthetic snapshot, for tests that exercise the wire
/// layer and don't need a live engine behind the socket.
fn synthetic_reader() -> SnapshotReader {
    let mut catalog = std::collections::HashMap::new();
    catalog.insert(
        ("Fact".to_string(), deepdive_repro::relstore::tuple![1i64]),
        0usize,
    );
    catalog.insert(
        ("Fact".to_string(), deepdive_repro::relstore::tuple![2i64]),
        1usize,
    );
    SnapshotReader::fixed(Snapshot::synthetic(
        1,
        vec![0.9, 0.4],
        CatalogShards::build(catalog.iter(), 1),
    ))
}

/// The consistency batch the concurrent clients hammer with: every result
/// must come from one snapshot, so the cross-checks below can only pass if
/// the server really pinned a single epoch for the whole batch.
fn consistency_ops(supervised: &Tuple) -> Vec<Op> {
    vec![
        Op::Stats,
        Op::probability_of("MarriedMentions", supervised.clone()),
        Op::query("MarriedMentions", FactQuerySpec::default()),
        Op::query(
            "MarriedMentions",
            FactQuerySpec {
                top_k: Some(1),
                ..FactQuerySpec::default()
            },
        ),
    ]
}

/// Assert one batch answer is internally consistent; returns its epoch.
fn check_consistency(batch: &deepdive_repro::server::Batch) -> u64 {
    let OpResult::Stats { num_catalogued, .. } = batch.results[0] else {
        panic!("expected stats, got {:?}", batch.results[0]);
    };
    let OpResult::Probability(supervised_p) = batch.results[1] else {
        panic!("expected probability, got {:?}", batch.results[1]);
    };
    let OpResult::Facts(ref all) = batch.results[2] else {
        panic!("expected facts, got {:?}", batch.results[2]);
    };
    let OpResult::Facts(ref top) = batch.results[3] else {
        panic!("expected facts, got {:?}", batch.results[3]);
    };

    // The supervised fact is pinned at 1.0 in every epoch that has it.
    assert_eq!(
        supervised_p,
        Some(1.0),
        "supervised fact not pinned in epoch {}",
        batch.epoch
    );
    // The full scan agrees with the catalog of the same snapshot — a mix of
    // two epochs would disagree while an update is being published.
    assert_eq!(all.len(), num_catalogued);
    assert!(all.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
    // Top-k over the same pinned snapshot matches the full scan's maximum.
    let best = all
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(top[0].1, best);
    batch.epoch
}

#[test]
fn concurrent_clients_observe_consistent_epochs_during_updates() {
    const CLIENTS: usize = 4;
    const UPDATES: i64 = 3;

    let mut engine = engine();
    engine.initial_run().expect("initial run");
    engine.materialize().unwrap();
    let server = Server::bind("127.0.0.1:0", engine.reader(), ServerConfig::default())
        .expect("server binds");
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);
    let supervised = supervised();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let supervised = supervised.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut last_epoch = 0u64;
                    let mut epochs_seen = 0u64;
                    let mut batches = 0u64;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let batch = client
                            .batch(consistency_ops(&supervised))
                            .expect("batch succeeds");
                        let epoch = check_consistency(&batch);
                        // Epochs only move forward on one connection.
                        assert!(
                            epoch >= last_epoch,
                            "epoch went backwards over the socket: {last_epoch} -> {epoch}"
                        );
                        if epoch != last_epoch {
                            last_epoch = epoch;
                            epochs_seen += 1;
                        }
                        batches += 1;
                        if done {
                            break;
                        }
                    }
                    (epochs_seen, batches)
                })
            })
            .collect();

        // The writer thread: live incremental updates while clients hammer.
        for i in 0..UPDATES {
            engine
                .run_update(&update_for(i), ExecutionMode::Incremental)
                .expect("update applies");
        }
        stop.store(true, Ordering::Relaxed);

        for handle in handles {
            let (epochs_seen, batches) = handle.join().expect("client thread panicked");
            assert!(batches > 0);
            assert!(epochs_seen >= 1);
        }
    });

    // A fresh connection now serves the final epoch with every new pair.
    let mut client = Client::connect(addr).expect("client connects");
    assert_eq!(client.epoch().expect("epoch"), 1 + UPDATES as u64);
    assert_eq!(client.epoch().expect("epoch"), engine.epoch());
    for i in 0..UPDATES {
        let pair = Tuple::from_iter([Value::Int(100 + 2 * i), Value::Int(101 + 2 * i)]);
        let (_, p) = client
            .probability_of("MarriedMentions", pair)
            .expect("lookup");
        assert!(p.is_some(), "pair from update {i} missing in final epoch");
    }
    assert_eq!(
        client.relations().expect("relations"),
        vec!["MarriedMentions".to_string()]
    );
    assert!(server.stats().batches_served > 0);
    server.shutdown();
}

/// Send `payload` as one well-formed frame and decode the one response frame.
fn roundtrip_raw(stream: &mut TcpStream, payload: &[u8]) -> Json {
    write_frame(stream, payload).expect("frame writes");
    stream.flush().expect("flush");
    let response = read_frame(stream, 1 << 20).expect("response frame");
    parse(std::str::from_utf8(&response).expect("utf-8 response")).expect("json response")
}

fn error_kind(doc: &Json) -> Option<&str> {
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    doc.get("error")?.get("kind")?.as_str()
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = Server::bind("127.0.0.1:0", synthetic_reader(), ServerConfig::default())
        .expect("server binds");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Garbage payload in a well-formed frame: typed malformed_frame error.
    let doc = roundtrip_raw(&mut stream, b"this is not json {{{");
    assert_eq!(error_kind(&doc), Some("malformed_frame"));

    // Non-UTF-8 payload: same taxonomy.
    let doc = roundtrip_raw(&mut stream, &[0xff, 0xfe, 0x00, 0x80]);
    assert_eq!(error_kind(&doc), Some("malformed_frame"));

    // 100 KB of '[' — hostile nesting depth must be a typed parse error,
    // not a connection-thread stack overflow (which would abort the whole
    // server process).
    let doc = roundtrip_raw(&mut stream, "[".repeat(100_000).as_bytes());
    assert_eq!(error_kind(&doc), Some("malformed_frame"));

    // Well-formed JSON that is not a valid request: bad_request.
    let doc = roundtrip_raw(&mut stream, br#"{"ops": [{"op": "warp_drive"}]}"#);
    assert_eq!(error_kind(&doc), Some("bad_request"));

    // The sleep op is fault-injection only and this server didn't enable it.
    let doc = roundtrip_raw(
        &mut stream,
        br#"{"ops": [{"op": "sleep", "millis": 9999}]}"#,
    );
    assert_eq!(error_kind(&doc), Some("bad_request"));

    // The SAME connection still serves valid requests afterwards.
    let doc = roundtrip_raw(
        &mut stream,
        &Request {
            ops: vec![Op::Epoch],
            at_epoch: None,
        }
        .encode(),
    );
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("epoch").and_then(Json::as_f64), Some(1.0));

    // Three of the four probes fail at decode time (the disabled sleep op
    // decodes fine and is refused at execution instead).
    assert!(server.stats().malformed_frames >= 3);
    server.shutdown();
}

#[test]
fn truncated_and_oversized_frames_close_cleanly_without_taking_the_server_down() {
    let config = ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", synthetic_reader(), config).expect("server binds");
    let addr = server.local_addr();

    // Truncated length prefix: two bytes, then half-close.  The server must
    // drop the connection without answering (nothing well-formed to answer).
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&[0x00, 0x00]).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        assert!(matches!(
            read_frame(&mut stream, 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    // Truncated payload: full prefix declaring 100 bytes, 3 delivered.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"abc").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        assert!(matches!(
            read_frame(&mut stream, 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    // Oversized declaration: typed `oversized` response, then close (the
    // stream cannot be re-synchronized past an unread declared payload).
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&(1u32 << 20).to_be_bytes()).unwrap();
        let response = read_frame(&mut stream, 1 << 20).expect("oversized response");
        let doc = parse(std::str::from_utf8(&response).unwrap()).unwrap();
        assert_eq!(error_kind(&doc), Some("oversized"));
        assert!(matches!(
            read_frame(&mut stream, 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    // After all that abuse, a normal client still gets served.
    let mut client = Client::connect(addr).expect("client connects");
    assert_eq!(client.epoch().expect("epoch"), 1);
    server.shutdown();
}

#[test]
fn idle_and_stalled_connections_are_reaped_by_the_slowloris_deadline() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", synthetic_reader(), config).expect("server binds");
    let addr = server.local_addr();

    // One connection that never sends, one stalled mid-prefix: both must be
    // closed by the idle deadline instead of occupying slots forever.
    let mut silent = TcpStream::connect(addr).expect("connects");
    silent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut stalled = TcpStream::connect(addr).expect("connects");
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stalled.write_all(&[0x00]).unwrap(); // one byte of a four-byte prefix
    assert!(
        matches!(read_frame(&mut silent, 1 << 20), Err(FrameError::Closed)),
        "silent connection not reaped"
    );
    assert!(
        matches!(read_frame(&mut stalled, 1 << 20), Err(FrameError::Closed)),
        "stalled connection not reaped"
    );

    // An active client keeps being served well past the idle window.
    let mut client = Client::connect(addr).expect("connects");
    for _ in 0..3 {
        assert_eq!(client.epoch().expect("epoch"), 1);
        thread::sleep(Duration::from_millis(120));
    }
    server.shutdown();
}

/// Deterministic splitmix64 — the fuzz corpus is fixed across runs.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[test]
fn random_byte_fuzz_yields_typed_errors_or_clean_closes_never_hangs() {
    let config = ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", synthetic_reader(), config).expect("server binds");
    let addr = server.local_addr();
    let mut rng = SplitMix(0xdd5e_17e5);

    for round in 0..60 {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let len = (rng.next() % 64) as usize;
        let junk: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // The server may refuse and close while we are still writing (e.g. a
        // junk prefix declaring an oversized frame); a broken pipe here is an
        // acceptable outcome, not a failure.
        let _ = stream.write_all(&junk);
        let _ = stream.shutdown(Shutdown::Write);
        // Drain whatever the server sends: zero or more typed error frames,
        // then a close.  A read *timeout* here would mean a wedged
        // connection — that's the failure this test exists to catch.
        loop {
            match read_frame(&mut stream, 1 << 20) {
                Ok(frame) => {
                    let doc = parse(std::str::from_utf8(&frame).expect("utf-8"))
                        .expect("server always sends well-formed JSON");
                    assert_eq!(
                        doc.get("ok").and_then(Json::as_bool),
                        Some(false),
                        "round {round}: junk cannot produce a success response"
                    );
                    assert!(error_kind(&doc).is_some());
                }
                Err(FrameError::Closed) => break,
                // An abortive close (RST) is still a close, not a hang.
                Err(FrameError::Truncated { .. }) => break,
                Err(FrameError::Io(err))
                    if !matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break;
                }
                Err(other) => panic!("round {round}: connection wedged: {other}"),
            }
        }
    }

    // The server survived 60 rounds of garbage and still serves.
    let mut client = Client::connect(addr).expect("client connects");
    assert_eq!(client.epoch().expect("epoch"), 1);
    server.shutdown();
}

#[test]
fn bounded_queue_returns_overloaded_under_flood_and_recovers_after_drain() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        allow_sleep_op: true,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", synthetic_reader(), config).expect("server binds");
    let addr = server.local_addr();

    thread::scope(|scope| {
        // Occupy the single worker for a while...
        let busy = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connects");
            client
                .batch(vec![Op::Sleep { millis: 600 }])
                .expect("sleep batch")
        });
        thread::sleep(Duration::from_millis(150)); // worker now holds it
                                                   // ...fill both queue slots...
        let queued: Vec<_> = (0..2)
            .map(|_| {
                let handle = scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    client
                        .batch(vec![Op::Sleep { millis: 0 }])
                        .expect("queued batch")
                });
                thread::sleep(Duration::from_millis(100)); // let it enqueue
                handle
            })
            .collect();

        // ...and the next request must be refused with the TYPED overload
        // signal — immediately, not after an unbounded wait.
        let mut flooded = Client::connect(addr).expect("connects");
        let refusal = flooded.batch(vec![Op::Epoch]).expect_err("must be refused");
        assert!(
            refusal.is_overloaded(),
            "expected overloaded, got: {refusal}"
        );
        match refusal {
            ClientError::Server { kind, message } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert!(message.contains("capacity 2"));
            }
            other => panic!("expected a server refusal, got {other}"),
        }

        // Every admitted request completes normally.
        assert_eq!(busy.join().expect("busy client").epoch, 1);
        for handle in queued {
            assert_eq!(handle.join().expect("queued client").epoch, 1);
        }

        // After the drain, the SAME flooded connection is served again.
        let batch = flooded
            .batch(vec![Op::Epoch])
            .expect("recovers after drain");
        assert_eq!(batch.epoch, 1);
    });

    assert!(server.stats().overload_rejections >= 1);
    assert!(server.stats().batches_served >= 4);
    server.shutdown();
}

/// CI soak: clients loop mixed batches against a live server while the
/// writer applies a stream of incremental updates.  Run explicitly with
/// `cargo test --release --test server -- --ignored`.
#[test]
#[ignore = "soak test; CI runs it explicitly"]
fn soak_concurrent_clients_with_live_updates() {
    const CLIENTS: usize = 4;
    const UPDATES: i64 = 6;

    let mut engine = engine();
    engine.initial_run().expect("initial run");
    engine.materialize().unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        engine.reader(),
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);
    let supervised = supervised();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|worker| {
                let supervised = supervised.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    let mut last_epoch = 0u64;
                    let mut batches = 0u64;
                    let mut overloads = 0u64;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let mut ops = consistency_ops(&supervised);
                        ops.push(Op::query(
                            "MarriedMentions",
                            FactQuerySpec {
                                min_probability: 0.5,
                                top_k: Some(10),
                                offset: worker,
                                limit: Some(3),
                            },
                        ));
                        match client.batch(ops) {
                            Ok(batch) => {
                                let epoch = check_consistency(&batch);
                                assert!(epoch >= last_epoch, "epoch regression in soak");
                                last_epoch = epoch;
                                batches += 1;
                            }
                            // Backpressure is a legal answer under flood; the
                            // connection stays usable.
                            Err(err) if err.is_overloaded() => overloads += 1,
                            Err(err) => panic!("soak client failed: {err}"),
                        }
                        if done {
                            break;
                        }
                    }
                    (batches, overloads)
                })
            })
            .collect();

        for i in 0..UPDATES {
            engine
                .run_update(&update_for(i), ExecutionMode::Incremental)
                .expect("update applies");
            thread::sleep(Duration::from_millis(50));
        }
        stop.store(true, Ordering::Relaxed);

        let mut total_batches = 0;
        for handle in handles {
            let (batches, _overloads) = handle.join().expect("soak client panicked");
            assert!(batches > 0);
            total_batches += batches;
        }
        assert!(total_batches >= CLIENTS as u64);
    });

    assert_eq!(engine.epoch(), 1 + UPDATES as u64);
    let mut client = Client::connect(addr).expect("connects");
    assert_eq!(client.epoch().expect("epoch"), engine.epoch());
    server.shutdown();
}

//! Concurrent serving: N reader threads hammer `Snapshot::probability_of` and
//! `FactQuery` while the main thread executes incremental updates.  Every
//! reader must observe a sequence of fully consistent epochs — monotonically
//! increasing, internally coherent (no torn reads), with the supervised fact
//! pinned at probability 1.0 in every epoch that contains it.

use deepdive_repro::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const PROGRAM: &str = r#"
    relation Sentence(s: int, content: text) base.
    relation PersonCandidate(s: int, m: int, t: text) base.
    relation EL(m: int, e: text) base.
    relation Married(e1: text, e2: text) base.
    relation MarriedCandidate(m1: int, m2: int) derived.
    relation MarriedMentions(m1: int, m2: int) variable.

    rule R1 candidate:
      MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

    rule FE1 feature:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
        Sentence(s, content)
      weight = phrase(t1, t2, content).

    rule S1 supervision+:
      MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"#;

fn engine() -> DeepDive {
    let mut db = Database::new();
    db.create_table(
        "Sentence",
        Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
    )
    .unwrap();
    db.create_table(
        "PersonCandidate",
        Schema::of(&[
            ("s", DataType::Int),
            ("m", DataType::Int),
            ("t", DataType::Text),
        ]),
    )
    .unwrap();
    db.create_table(
        "EL",
        Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
    )
    .unwrap();
    db.create_table(
        "Married",
        Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
    )
    .unwrap();
    db.insert_all(
        "Sentence",
        vec![
            Tuple::from_iter([
                Value::Int(1),
                Value::text("Barack and his wife Michelle attended the dinner"),
            ]),
            Tuple::from_iter([
                Value::Int(2),
                Value::text("George and his wife Laura were married"),
            ]),
        ],
    )
    .unwrap();
    db.insert_all(
        "PersonCandidate",
        vec![
            Tuple::from_iter([Value::Int(1), Value::Int(10), Value::text("Barack")]),
            Tuple::from_iter([Value::Int(1), Value::Int(11), Value::text("Michelle")]),
            Tuple::from_iter([Value::Int(2), Value::Int(20), Value::text("George")]),
            Tuple::from_iter([Value::Int(2), Value::Int(21), Value::text("Laura")]),
        ],
    )
    .unwrap();
    db.insert_all(
        "EL",
        vec![
            Tuple::from_iter([Value::Int(10), Value::text("Barack_Obama_1")]),
            Tuple::from_iter([Value::Int(11), Value::text("Michelle_Obama_1")]),
        ],
    )
    .unwrap();
    db.insert_all(
        "Married",
        vec![Tuple::from_iter([
            Value::text("Barack_Obama_1"),
            Value::text("Michelle_Obama_1"),
        ])],
    )
    .unwrap();

    DeepDive::builder()
        .program_text(PROGRAM)
        .database(db)
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds")
}

fn supervised() -> Tuple {
    Tuple::from_iter([Value::Int(10), Value::Int(11)])
}

/// One update per epoch: a fresh document introducing a new candidate pair.
fn update_for(i: i64) -> KbcUpdate {
    let (s, m1, m2) = (10 + i, 100 + 2 * i, 101 + 2 * i);
    let mut update = KbcUpdate::new();
    update
        .insert(
            "Sentence",
            Tuple::from_iter([
                Value::Int(s),
                Value::text(format!("Person{m1} and his wife Person{m2} appeared")),
            ]),
        )
        .insert(
            "PersonCandidate",
            Tuple::from_iter([
                Value::Int(s),
                Value::Int(m1),
                Value::text(format!("Person{m1}")),
            ]),
        )
        .insert(
            "PersonCandidate",
            Tuple::from_iter([
                Value::Int(s),
                Value::Int(m2),
                Value::text(format!("Person{m2}")),
            ]),
        );
    update
}

#[test]
fn readers_observe_consistent_epochs_during_updates() {
    const READERS: usize = 4;
    const UPDATES: i64 = 3;

    let mut engine = engine();
    engine.initial_run().expect("initial run");
    engine.materialize().unwrap();
    let reader = engine.reader();
    let stop = AtomicBool::new(false);
    let supervised = supervised();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let reader = reader.clone();
                let supervised = supervised.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    let mut epochs_seen = 0u64;
                    let mut reads = 0u64;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let snap = reader.snapshot();

                        // Epochs only move forward.
                        assert!(
                            snap.epoch() >= last_epoch,
                            "epoch went backwards: {} -> {}",
                            last_epoch,
                            snap.epoch()
                        );
                        if snap.epoch() != last_epoch {
                            last_epoch = snap.epoch();
                            epochs_seen += 1;
                        }

                        // The supervised fact is pinned at 1.0 in every epoch.
                        assert_eq!(
                            snap.probability_of("MarriedMentions", &supervised),
                            Some(1.0),
                            "supervised fact not pinned in epoch {}",
                            snap.epoch()
                        );

                        // No torn reads: every catalog entry resolves inside
                        // this snapshot's own marginal vector, and the stats
                        // agree with the catalog — the snapshot is one
                        // consistent version, not a mix of two epochs.
                        let all = snap.facts("MarriedMentions").run();
                        assert_eq!(all.len(), snap.num_catalogued_variables());
                        assert_eq!(snap.stats().num_variables, snap.marginals().len());
                        assert!(all.iter().all(|(_, p)| (0.0..=1.0).contains(p)));

                        // Paginated top-k agrees with the full scan of the
                        // same snapshot (it could not if rows came from
                        // different versions).
                        let top = snap.facts("MarriedMentions").top_k(1).run();
                        let best = all
                            .iter()
                            .map(|(_, p)| *p)
                            .fold(f64::NEG_INFINITY, f64::max);
                        assert_eq!(top[0].1, best);

                        reads += 1;
                        if done {
                            break;
                        }
                    }
                    (epochs_seen, reads)
                })
            })
            .collect();

        // Writer: run incremental updates while the readers hammer away.
        for i in 0..UPDATES {
            engine
                .run_update(&update_for(i), ExecutionMode::Incremental)
                .expect("update applies");
        }
        stop.store(true, Ordering::Relaxed);

        for handle in handles {
            let (epochs_seen, reads) = handle.join().expect("reader thread panicked");
            assert!(reads > 0);
            assert!(epochs_seen >= 1);
        }
    });

    // All epochs published: initial run + one per update.
    assert_eq!(engine.epoch(), 1 + UPDATES as u64);
    // A handle taken now serves the final epoch, and the new pairs are there.
    let final_snap = reader.snapshot();
    assert_eq!(final_snap.epoch(), engine.epoch());
    for i in 0..UPDATES {
        let pair = Tuple::from_iter([Value::Int(100 + 2 * i), Value::Int(101 + 2 * i)]);
        assert!(
            final_snap
                .probability_of("MarriedMentions", &pair)
                .is_some(),
            "pair from update {i} missing in final epoch"
        );
    }
}

#[test]
fn snapshots_taken_before_an_update_are_immutable() {
    let mut engine = engine();
    engine.initial_run().expect("initial run");
    engine.materialize().unwrap();
    let before = engine.snapshot();
    let facts_before = before.facts("MarriedMentions").run();

    engine
        .run_update(&update_for(0), ExecutionMode::Incremental)
        .expect("update applies");

    // The old snapshot is untouched by the update...
    assert_eq!(before.epoch(), 1);
    assert_eq!(before.facts("MarriedMentions").run(), facts_before);
    // ...while the engine already serves the next epoch with more facts.
    let after = engine.snapshot();
    assert_eq!(after.epoch(), 2);
    assert!(after.facts("MarriedMentions").run().len() > facts_before.len());
}

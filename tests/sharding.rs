//! Sharded O(Δ) snapshot publish: structural-sharing and serving guarantees.
//!
//! The catalog inside every published [`Snapshot`] is sharded per relation.
//! These tests pin the two load-bearing properties of that design:
//!
//! 1. **Epoch sharing** — after a Δ-update that touches one relation, every
//!    *untouched* relation's `Arc<RelationIndex>` is pointer-identical across
//!    the old and new epochs (`Arc::ptr_eq`): the publish re-indexed only the
//!    dirty shard instead of rebuilding the whole catalog.
//! 2. **Serving isolation** — a reader holding the pre-update snapshot keeps
//!    seeing the old catalog (old counts, old facts, no new tuples) while and
//!    after the sharded publish lands the next epoch.

use deepdive_repro::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Two independent variable relations so one can grow while the other stays
/// untouched: claims become `FactA`, reports become `FactB`.
const PROGRAM: &str = r#"
    relation ClaimA(id: int) base.
    relation ClaimB(id: int) base.
    relation LabelA(id: int) base.
    relation FactA(id: int) variable.
    relation FactB(id: int) variable.

    rule FA feature: FactA(id) :- ClaimA(id) weight = 1.5.
    rule FB feature: FactB(id) :- ClaimB(id) weight = 1.5.
    rule SA supervision+: FactA(id) :- ClaimA(id), LabelA(id).
"#;

fn engine() -> DeepDive {
    let mut db = Database::new();
    db.create_table("ClaimA", Schema::of(&[("id", DataType::Int)]))
        .unwrap();
    db.create_table("ClaimB", Schema::of(&[("id", DataType::Int)]))
        .unwrap();
    db.create_table("LabelA", Schema::of(&[("id", DataType::Int)]))
        .unwrap();
    db.insert_all(
        "ClaimA",
        vec![
            Tuple::from_iter([Value::Int(1)]),
            Tuple::from_iter([Value::Int(2)]),
        ],
    )
    .unwrap();
    db.insert_all(
        "ClaimB",
        vec![
            Tuple::from_iter([Value::Int(100)]),
            Tuple::from_iter([Value::Int(101)]),
        ],
    )
    .unwrap();
    db.insert_all("LabelA", vec![Tuple::from_iter([Value::Int(1)])])
        .unwrap();
    DeepDive::builder()
        .program_text(PROGRAM)
        .database(db)
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds")
}

/// An update growing only `FactA` (via a new ClaimA tuple).
fn grow_a(id: i64) -> KbcUpdate {
    let mut update = KbcUpdate::new();
    update.insert("ClaimA", Tuple::from_iter([Value::Int(id)]));
    update
}

#[test]
fn untouched_shards_are_arc_shared_across_epochs() {
    let mut dd = engine();
    let report = dd.initial_run().expect("initial run");
    // The initial publish indexes every variable relation, sorted.
    assert_eq!(report.resharded_relations, vec!["FactA", "FactB"]);

    let epoch1 = dd.snapshot();
    assert_eq!(epoch1.relation_names(), vec!["FactA", "FactB"]);
    assert_eq!(epoch1.catalog().shard("FactA").unwrap().generation(), 1);
    assert_eq!(epoch1.catalog().shard("FactB").unwrap().generation(), 1);

    let report = dd
        .run_update(&grow_a(3), ExecutionMode::Incremental)
        .expect("update applies");
    // The dirty-set threaded grounder → engine → publish names exactly the
    // grown relation.
    assert_eq!(report.resharded_relations, vec!["FactA"]);
    assert_eq!(report.new_variables, 1);

    let epoch2 = dd.snapshot();
    assert_eq!(epoch2.epoch(), 2);

    // Untouched relation: the serving index is the *same allocation* in both
    // epochs — publish did not rebuild it.
    assert!(Arc::ptr_eq(
        epoch1.catalog().shard("FactB").unwrap().index(),
        epoch2.catalog().shard("FactB").unwrap().index(),
    ));
    assert_eq!(epoch2.catalog().shard("FactB").unwrap().generation(), 1);

    // Touched relation: freshly merged index, generation stamped with the
    // publishing epoch.
    assert!(!Arc::ptr_eq(
        epoch1.catalog().shard("FactA").unwrap().index(),
        epoch2.catalog().shard("FactA").unwrap().index(),
    ));
    assert_eq!(epoch2.catalog().shard("FactA").unwrap().generation(), 2);
    assert_eq!(epoch2.catalog().shard("FactA").unwrap().index().len(), 3);

    // A second A-only update still shares FactB's index with epoch 1.
    dd.run_update(&grow_a(4), ExecutionMode::Incremental)
        .expect("update applies");
    let epoch3 = dd.snapshot();
    assert!(Arc::ptr_eq(
        epoch1.catalog().shard("FactB").unwrap().index(),
        epoch3.catalog().shard("FactB").unwrap().index(),
    ));
}

#[test]
fn no_growth_update_republishes_all_shards_shared() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");
    let epoch1 = dd.snapshot();

    // A supervision-only update: no new variables anywhere.
    let mut update = KbcUpdate::new();
    update.insert("LabelA", Tuple::from_iter([Value::Int(2)]));
    let report = dd
        .run_update(&update, ExecutionMode::Incremental)
        .expect("update applies");
    assert!(report.resharded_relations.is_empty());

    let epoch2 = dd.snapshot();
    assert_eq!(epoch2.epoch(), 2);
    for relation in ["FactA", "FactB"] {
        assert!(Arc::ptr_eq(
            epoch1.catalog().shard(relation).unwrap().index(),
            epoch2.catalog().shard(relation).unwrap().index(),
        ));
    }
}

#[test]
fn readers_on_an_old_snapshot_see_the_old_catalog_while_publish_lands() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");
    let reader = dd.reader();
    let old = dd.snapshot();
    let old_a = old.facts("FactA").run();
    let old_entries = old.num_catalogued_variables();
    let published = AtomicBool::new(false);

    thread::scope(|scope| {
        let handle = {
            let old = Arc::clone(&old);
            let reader = reader.clone();
            let published = &published;
            scope.spawn(move || {
                let mut saw_new_epoch = false;
                loop {
                    // The held snapshot never changes: same catalog, same
                    // facts, the Δ tuple invisible — even while (and after)
                    // the writer's sharded publish swaps the served pointer.
                    assert_eq!(old.epoch(), 1);
                    assert_eq!(old.num_catalogued_variables(), old_entries);
                    assert_eq!(old.facts("FactA").run(), old_a);
                    assert_eq!(
                        old.probability_of("FactA", &Tuple::from_iter([Value::Int(7)])),
                        None
                    );

                    let current = reader.snapshot();
                    if current.epoch() == 2 {
                        // The publish landed: the new epoch serves the grown
                        // shard while our old handle still serves epoch 1.
                        assert!(current
                            .probability_of("FactA", &Tuple::from_iter([Value::Int(7)]))
                            .is_some());
                        saw_new_epoch = true;
                    }
                    if published.load(Ordering::Acquire) && saw_new_epoch {
                        break;
                    }
                }
            })
        };

        dd.run_update(&grow_a(7), ExecutionMode::Incremental)
            .expect("update applies");
        published.store(true, Ordering::Release);
        handle.join().expect("reader thread panicked");
    });

    // Old and new epochs share the untouched FactB shard.
    let new = dd.snapshot();
    assert!(Arc::ptr_eq(
        old.catalog().shard("FactB").unwrap().index(),
        new.catalog().shard("FactB").unwrap().index(),
    ));
}

/// An update shrinking only `FactA` (deleting a ClaimA tuple retracts the
/// grounded variable, its factors, and its catalog entry).
fn shrink_a(id: i64) -> KbcUpdate {
    let mut update = KbcUpdate::new();
    update.delete("ClaimA", Tuple::from_iter([Value::Int(id)]));
    update
}

#[test]
fn retraction_reindexes_only_the_touched_relation() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");
    // Grow FactA first so the graph's *last* variable belongs to FactA: the
    // swap-remove compaction triggered by the deletion below then moves a
    // FactA variable into the freed slot, keeping the churn within one shard.
    dd.run_update(&grow_a(3), ExecutionMode::Incremental)
        .expect("growth applies");
    let epoch2 = dd.snapshot();
    let before = epoch2.catalog().shard("FactA").unwrap().index().len();

    let report = dd
        .run_update(&shrink_a(2), ExecutionMode::Incremental)
        .expect("retraction applies");
    // The retraction sweep threads the shrunken relation through the same
    // dirty-set as growth: exactly FactA is re-indexed.
    assert_eq!(report.resharded_relations, vec!["FactA"]);

    let epoch3 = dd.snapshot();
    assert_eq!(
        epoch3.catalog().shard("FactA").unwrap().index().len(),
        before - 1,
        "the retracted tuple must leave the serving index"
    );
    assert!(
        epoch3
            .probability_of("FactA", &Tuple::from_iter([Value::Int(2)]))
            .is_none(),
        "retracted fact must not be served by the new epoch"
    );

    // Untouched relation: same allocation across the shrink publish.
    assert!(Arc::ptr_eq(
        epoch2.catalog().shard("FactB").unwrap().index(),
        epoch3.catalog().shard("FactB").unwrap().index(),
    ));
    assert_eq!(epoch3.catalog().shard("FactB").unwrap().generation(), 1);
}

#[test]
fn compaction_move_across_relations_reindexes_the_moved_shard() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");

    // Right after the initial run the graph's last variable belongs to FactB,
    // so retracting a FactA variable swap-moves a FactB variable to a new id.
    // That id lives in FactB's serving index, so FactB is *touched* — the
    // publish must re-index it, and does so through the same O(Δ) op-log.
    let report = dd
        .run_update(&shrink_a(2), ExecutionMode::Incremental)
        .expect("retraction applies");
    assert_eq!(report.resharded_relations, vec!["FactA", "FactB"]);

    // Both FactB facts are still served, with marginals intact under the
    // moved variable ids.
    let snap = dd.snapshot();
    for id in [100, 101] {
        assert!(
            snap.probability_of("FactB", &Tuple::from_iter([Value::Int(id)]))
                .is_some(),
            "FactB({id}) must survive the cross-relation compaction move"
        );
    }
    assert!(snap
        .probability_of("FactA", &Tuple::from_iter([Value::Int(2)]))
        .is_none());
}

#[test]
fn pinned_snapshots_serve_retracted_facts_until_dropped() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");
    let pinned = dd.snapshot();
    let tuple = Tuple::from_iter([Value::Int(1)]);
    let pinned_prob = pinned.probability_of("FactA", &tuple);
    assert!(pinned_prob.is_some());

    dd.run_update(&shrink_a(1), ExecutionMode::Incremental)
        .expect("retraction applies");

    // The old epoch still serves the retracted fact, bit-for-bit.
    assert_eq!(pinned.epoch(), 1);
    assert_eq!(pinned.probability_of("FactA", &tuple), pinned_prob);
    assert!(pinned.facts("FactA").run().iter().any(|(t, _)| *t == tuple));

    // The new epoch does not.
    let fresh = dd.snapshot();
    assert!(fresh.probability_of("FactA", &tuple).is_none());
    assert!(!fresh.facts("FactA").run().iter().any(|(t, _)| *t == tuple));

    // Dropping the pinned snapshot releases the last reference to the old
    // shard; the served state is unaffected.
    drop(pinned);
    assert!(dd.snapshot().probability_of("FactA", &tuple).is_none());
}

#[test]
fn pagination_stays_stable_after_retraction() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");
    dd.run_update(&grow_a(3), ExecutionMode::Incremental)
        .expect("growth applies");
    dd.run_update(&shrink_a(1), ExecutionMode::Incremental)
        .expect("retraction applies");
    let snap = dd.snapshot();

    // Total order is still (relation, tuple), with the retracted tuple gone.
    let all = snap.all_facts(0.0, 0, usize::MAX);
    assert_eq!(all.len(), snap.num_catalogued_variables());
    let keys: Vec<(String, Tuple)> = all
        .iter()
        .map(|(r, t, _)| (r.to_string(), t.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "all_facts must stay sorted after retraction");
    assert!(!keys.contains(&("FactA".to_string(), Tuple::from_iter([Value::Int(1)]))));

    // Disjoint pages still tile the enumeration exactly.
    let mut paged = Vec::new();
    let mut offset = 0;
    loop {
        let page = snap.all_facts(0.0, offset, 2);
        if page.is_empty() {
            break;
        }
        offset += page.len();
        paged.extend(page);
    }
    assert_eq!(paged, all);
}

#[test]
fn all_facts_pagination_is_stable_across_relations() {
    let mut dd = engine();
    dd.initial_run().expect("initial run");
    let snap = dd.snapshot();

    // Deterministic total order: relation name, then tuple.
    let all = snap.all_facts(0.0, 0, usize::MAX);
    assert_eq!(all.len(), snap.num_catalogued_variables());
    let names: Vec<&str> = all.iter().map(|(r, _, _)| *r).collect();
    assert_eq!(names, vec!["FactA", "FactA", "FactB", "FactB"]);

    // Disjoint pages tile the full enumeration exactly.
    let mut paged = Vec::new();
    let mut offset = 0;
    loop {
        let page = snap.all_facts(0.0, offset, 3);
        if page.is_empty() {
            break;
        }
        offset += page.len();
        paged.extend(page);
    }
    assert_eq!(paged, all);
}

//! Offline stand-in for the subset of the `criterion` API the workspace's
//! benches use.
//!
//! It measures for real — each `Bencher::iter` call runs the routine
//! `sample_size` times around `Instant::now` and prints mean/min wall-clock
//! time — but it performs none of criterion's statistical analysis, warm-up
//! calibration, or HTML reporting.  Good enough to keep `cargo bench` useful
//! offline and to keep every bench target compiling; the JSON trajectory that
//! CI tracks is produced separately by `crates/bench/src/bin/bench_sweeps.rs`.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.run_named(name.to_string(), &mut f);
        group.finish();
        self
    }
}

/// Identifier combining a function name and a parameter, `"name/param"`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_named(id.id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_named(id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_named(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        report(&full, &bencher.samples);
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {name}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name}: mean {:?}, min {:?} ({} samples)",
        mean,
        min,
        samples.len()
    );
}

/// Batch-size hint; the stand-in treats all sizes alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs and times the benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Expands to a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(4);
        let mut setups = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("sweep", 42);
        assert_eq!(id.id, "sweep/42");
    }
}

//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The generators are real PRNGs (xoshiro256++ seeded with splitmix64), not
//! stubs: all sampling in the workspace is statistically meaningful and
//! deterministic per seed.  Only the *API* is a reduced façade — `Rng::gen`,
//! `Rng::gen_range` over integer/float ranges, and `SeedableRng::seed_from_u64`
//! — because that is the surface the workspace calls.
//!
//! Compared to the real crate, `StdRng` here is xoshiro256++ instead of
//! ChaCha12.  That is intentional: the Gibbs inner loops are throughput-bound
//! on RNG draws, and a non-cryptographic generator is the right default for
//! MCMC (same reason rand's own `SmallRng` exists).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds. Only `seed_from_u64` is provided; the workspace
/// never uses byte-array seeding.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for the primitive types the workspace draws.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform sampling from range types, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + f64::sample(rng) * (end - start)
    }
}

/// splitmix64: seeds xoshiro state from a single u64 (the reference method).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ — the fast, high-quality non-cryptographic generator used for
/// every RNG in this workspace.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // All-zero state is invalid (cannot occur from splitmix64, but guard).
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Deterministic general-purpose generator (xoshiro256++ here; ChaCha12 in
    /// the real crate).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::from_seed_u64(seed))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator for throughput-bound inner loops (sampler sweeps).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Decorrelate from StdRng streams built from the same seed.
            SmallRng(Xoshiro256PlusPlus::from_seed_u64(seed ^ 0x6a09e667f3bcc909))
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(0..5);
            assert!((0..5).contains(&v));
            let u: usize = r.gen_range(1..=3);
            assert!((1..=3).contains(&u));
            let f = r.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_600..5_400).contains(&trues));
    }
}

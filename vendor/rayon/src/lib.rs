//! Offline stand-in for the subset of the `rayon` API this workspace uses,
//! backed by a **persistent worker pool**.
//!
//! Unlike the serde façade, this one does real work: a process-wide pool of
//! long-lived worker threads ([`global_pool`]) lets the hogwild Gibbs sampler
//! genuinely run lock-free sweeps on multiple cores *without* paying thread
//! creation/teardown on every sweep.  Workers park on a condvar between jobs
//! and are woken by an epoch barrier; see the [`pool`] module docs for the
//! runtime design, and [`spawn_run_chunks`] for the retired per-call
//! scoped-thread dispatcher (kept as the benchmark baseline).
//!
//! First-party hot paths (`dd_inference::ParallelGibbs`) dispatch through
//! [`ThreadPool::run_chunks`] directly; the `par_chunks`/`par_iter` iterator
//! facade below routes through the same global pool and is retained for
//! rayon API fidelity, so swapping in the real crate remains a one-line
//! manifest change.
//!
//! The remaining difference from real rayon is scheduling sophistication
//! (chunk indices are handed out from one atomic counter instead of
//! work-stealing deques), which is irrelevant here because the callers
//! partition work into a handful of coarse chunks per sweep.

pub mod pool;

pub use pool::{global_pool, spawn_run_chunks, ThreadPool};

/// Parallelism of the shared [`global_pool`] (what a bare parallel call uses).
pub fn current_num_threads() -> usize {
    global_pool().num_threads()
}

pub mod prelude {
    pub use crate::{IndexedParallelIterator, ParallelIterator, ParallelSlice};
}

/// Entry point: `slice.par_chunks(n)` / `slice.par_iter()`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        ParChunks {
            slice: self,
            chunk_size: chunk_size.max(1),
        }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        self.as_slice().par_chunks(chunk_size)
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        self.as_slice().par_iter()
    }
}

/// Parallel iterator over `&[T]` chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

/// Parallel iterator over `&T` items.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

/// Minimal counterpart of rayon's `ParallelIterator`.
pub trait ParallelIterator: Sized {
    type Item;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send;
}

/// Minimal counterpart of rayon's `IndexedParallelIterator` — just `enumerate`.
pub trait IndexedParallelIterator: ParallelIterator {
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }
}

pub struct Enumerate<I> {
    inner: I,
}

/// Run `f` over the chunked work items on the shared persistent pool.
fn run_chunked<'a, T, F>(slice: &'a [T], chunk_size: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &'a [T]) + Sync + Send,
{
    let chunks: Vec<&[T]> = slice.chunks(chunk_size).collect();
    global_pool().run_chunks(chunks.len(), &|i| f(i, chunks[i]));
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_chunked(self.slice, self.chunk_size, |_, c| f(c));
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {}

impl<'a, T: Sync> ParallelIterator for Enumerate<ParChunks<'a, T>> {
    type Item = (usize, &'a [T]);

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_chunked(self.inner.slice, self.inner.chunk_size, |i, c| f((i, c)));
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let n = self.slice.len();
        let per = n.div_ceil(current_num_threads().max(1)).max(1);
        run_chunked(self.slice, per, |_, chunk| {
            for item in chunk {
                f(item);
            }
        });
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {}

impl<'a, T: Sync> ParallelIterator for Enumerate<ParIter<'a, T>> {
    type Item = (usize, &'a T);

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let slice = self.inner.slice;
        let per = slice.len().div_ceil(current_num_threads().max(1)).max(1);
        run_chunked(slice, per, |chunk_idx, chunk| {
            let base = chunk_idx * per;
            for (off, item) in chunk.iter().enumerate() {
                f((base + off, item));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_enumerate_covers_everything_once() {
        let data: Vec<usize> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        let chunk_count = AtomicUsize::new(0);
        data.par_chunks(64).enumerate().for_each(|(i, chunk)| {
            assert_eq!(chunk[0], i * 64);
            chunk_count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
        assert_eq!(chunk_count.load(Ordering::Relaxed), 1000usize.div_ceil(64));
    }

    #[test]
    fn par_iter_enumerate_indexes_correctly() {
        let data: Vec<usize> = (0..257).map(|i| i * 3).collect();
        let hits = AtomicUsize::new(0);
        data.par_iter().enumerate().for_each(|(i, &v)| {
            assert_eq!(v, i * 3);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}

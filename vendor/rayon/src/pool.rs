//! A persistent worker pool with epoch-barrier dispatch.
//!
//! This is the long-lived runtime behind the facade's `par_chunks`/`par_iter`
//! and behind `dd_inference::ParallelGibbs`: workers are spawned **once**,
//! park on a condvar between jobs, and are woken by bumping an epoch counter —
//! so dispatching a hogwild sweep costs a mutex round-trip and a wake instead
//! of `N` `clone(2)` syscalls per sweep (the per-sweep `std::thread::scope`
//! fan-out this pool replaced; that path survives as [`spawn_run_chunks`], the
//! benchmark baseline).
//!
//! # Design
//!
//! * **Parallelism accounting** — a pool of size `n` spawns `n - 1` worker
//!   threads; the thread that calls [`ThreadPool::run_chunks`] participates in
//!   the job itself, so total concurrency is exactly `n` and a pool of size 1
//!   degenerates to inline execution (no threads, fully deterministic).
//! * **Epoch barrier** — a job is published by storing a type-erased closure
//!   pointer and incrementing the epoch under the state mutex, then waking all
//!   workers.  Each worker runs the job at most once per epoch, decrements the
//!   outstanding count, and the dispatcher blocks on a second condvar until
//!   the count reaches zero.  Because the dispatcher cannot return before
//!   every worker is done, the job closure may safely borrow from the
//!   dispatcher's stack (the same argument that makes `std::thread::scope`
//!   sound); the lifetime erasure is confined to the internal `dispatch` method.
//! * **Work distribution** — [`ThreadPool::run_chunks`] hands out chunk
//!   indices from a shared atomic counter, so a slow chunk does not stall the
//!   others (the same dynamic schedule the scoped-thread path used).
//! * **Panic safety** — a worker that panics inside a job still decrements the
//!   outstanding count; the panic is recorded and re-raised on the dispatching
//!   thread once the barrier closes, so a poisoned sweep cannot deadlock the
//!   pool.
//!
//! `Drop` signals shutdown and joins every worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Lock ignoring poisoning: all state transitions in this module are
/// panic-safe (user closures run under `catch_unwind`), so a poisoned mutex
/// still guards consistent data and must not take the pool down with it.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Identity of the pool this thread is currently engaged with — serving
    /// as a worker, or blocked inside `dispatch` — used to turn the latent
    /// self-deadlock of *nested* dispatch on one pool into an immediate
    /// panic.  Dispatching on a *different* pool from inside a job is fine.
    static ENGAGED_POOL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Marks the current thread engaged with a pool for the guard's lifetime,
/// restoring the previous engagement on drop (including during unwinding).
struct EngagedGuard {
    previous: usize,
}

impl EngagedGuard {
    fn enter(pool_key: usize) -> Self {
        let previous = ENGAGED_POOL.with(|c| c.replace(pool_key));
        EngagedGuard { previous }
    }
}

impl Drop for EngagedGuard {
    fn drop(&mut self) {
        ENGAGED_POOL.with(|c| c.set(self.previous));
    }
}

/// A job is a borrowed `Fn(worker_index)` whose lifetime has been erased; see
/// the module docs for why the erasure is sound.
#[derive(Copy, Clone)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from many threads) and the
// dispatch barrier guarantees it outlives every call.
unsafe impl Send for Job {}

struct State {
    /// Incremented once per published job; workers run each epoch's job once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch's job.
    outstanding: usize,
    /// True if a worker panicked inside the current epoch's job.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published (or on shutdown).
    work_ready: Condvar,
    /// Signalled when the last worker finishes the current job.
    work_done: Condvar,
}

/// A persistent pool of parked worker threads; see the module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes dispatchers so two concurrent `run_chunks` calls cannot
    /// clobber each other's published job.
    dispatch_gate: Mutex<()>,
}

impl ThreadPool {
    /// Create a pool with parallelism `threads` (clamped to at least 1).
    ///
    /// `threads - 1` workers are spawned; the caller of
    /// [`ThreadPool::run_chunks`] is the remaining thread.
    pub fn new(threads: usize) -> Self {
        let workers_wanted = threads.max(1) - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                outstanding: 0,
                panicked: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let workers = (0..workers_wanted)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dd-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            dispatch_gate: Mutex::new(()),
        }
    }

    /// The pool's parallelism (worker threads plus the participating caller).
    pub fn num_threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Run `f(chunk_index)` for every index in `0..num_chunks`, distributing
    /// indices dynamically across the pool.  Blocks until all chunks finish.
    /// The calling thread participates, so this is also correct (and purely
    /// sequential) on a pool of size 1.
    pub fn run_chunks(&self, num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if num_chunks == 0 {
            return;
        }
        if self.workers.is_empty() || num_chunks == 1 {
            for i in 0..num_chunks {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let pull = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= num_chunks {
                break;
            }
            f(i);
        };
        self.dispatch(&pull);
    }

    /// Publish `job` to every worker, run it on the calling thread too, and
    /// block until all copies return.  Re-raises any worker panic.
    ///
    /// Invariant: a job must not dispatch back onto the **same** pool — the
    /// outer barrier is waiting on the very thread that would have to serve
    /// the inner one (the replaced scoped-thread dispatcher tolerated
    /// nesting; this runtime trades that for parked workers).  The guard
    /// below turns the would-be deadlock into an immediate panic.  Nothing
    /// in-tree nests; dispatching on a *different* pool remains legal.
    fn dispatch(&self, job: &(dyn Fn(usize) + Sync)) {
        let pool_key = Arc::as_ptr(&self.shared) as usize;
        assert!(
            ENGAGED_POOL.with(std::cell::Cell::get) != pool_key,
            "nested parallel dispatch on the same ThreadPool would deadlock"
        );
        let _engaged = EngagedGuard::enter(pool_key);
        let _gate = lock(&self.dispatch_gate);
        // SAFETY (lifetime erasure): we block below until `outstanding == 0`,
        // i.e. until no worker can touch the pointer again, so the borrow
        // `job` lives strictly longer than every dereference.
        let erased = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(job)
        });
        {
            let mut st = lock(&self.shared.state);
            st.job = Some(erased);
            st.outstanding = self.workers.len();
            st.panicked = false;
            st.epoch += 1;
        }
        self.shared.work_ready.notify_all();

        // Participate: the dispatcher is one of the pool's threads.
        let caller_result = catch_unwind(AssertUnwindSafe(|| job(self.workers.len())));

        let mut st = lock(&self.shared.state);
        while st.outstanding > 0 {
            st = self
                .shared
                .work_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a pool worker panicked while running a parallel job");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    // A worker serves exactly one pool for its whole life; mark it engaged so
    // a job that tries to dispatch back onto this pool panics instead of
    // deadlocking (see `ThreadPool::dispatch`).
    ENGAGED_POOL.with(|c| c.set(shared as *const Shared as usize));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    match st.job {
                        Some(job) => break job,
                        // Already-cleared epoch (we woke late); keep waiting.
                        None => continue,
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatcher blocks until we decrement `outstanding`
        // below, so the closure behind the pointer is still alive here.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) }));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// The process-wide shared pool, sized to the machine (lazily created).
///
/// Everything that does not need a specific thread count — the `par_iter` /
/// `par_chunks` facade, `ParallelGibbs::from_flat`, the engine default — runs
/// here, so the whole pipeline shares one set of long-lived workers.
pub fn global_pool() -> &'static Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Arc::new(ThreadPool::new(threads))
    })
}

/// The per-call scoped-thread dispatcher the pool replaced: spawns
/// `threads - 1` scoped workers (the caller participates) that pull chunk
/// indices from a shared counter, and tears them down when the call returns.
///
/// Kept as the *baseline* for `bench_sweeps`' pooled-vs-spawn comparison —
/// same dynamic schedule, same participation accounting, the only difference
/// is thread creation per call versus parking.  Not used on any hot path.
pub fn spawn_run_chunks(num_chunks: usize, threads: usize, f: &(dyn Fn(usize) + Sync)) {
    if num_chunks == 0 {
        return;
    }
    let spawned = (threads.max(1) - 1).min(num_chunks.saturating_sub(1));
    if spawned == 0 {
        for i in 0..num_chunks {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let pull = |_worker: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= num_chunks {
            break;
        }
        f(i);
    };
    std::thread::scope(|scope| {
        for w in 0..spawned {
            let pull = &pull;
            scope.spawn(move || pull(w));
        }
        pull(spawned);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_chunks_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run_chunks(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn size_one_pool_is_inline_and_ordered() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.run_chunks(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_survives_many_dispatch_epochs() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run_chunks(6, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * 21);
    }

    #[test]
    fn worker_panic_is_propagated_not_deadlocked() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(8, &|i| {
                if i % 2 == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable after the panic.
        let count = AtomicUsize::new(0);
        pool.run_chunks(4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_dispatch_on_same_pool_panics_instead_of_deadlocking() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(4, &|_| {
                pool.run_chunks(2, &|_| {});
            });
        }));
        assert!(result.is_err());
        // Dispatching on a *different* pool from inside a job stays legal.
        let other = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.run_chunks(2, &|_| {
            other.run_chunks(2, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn spawn_baseline_matches_pool_semantics() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        spawn_run_chunks(hits.len(), 4, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global_pool();
        let b = global_pool();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.num_threads() >= 1);
    }
}

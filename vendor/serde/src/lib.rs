//! Offline façade for the `serde` API surface this workspace uses.
//!
//! The workspace only relies on `#[derive(Serialize, Deserialize)]` for type
//! shape (no code in-tree performs serialization), so the façade re-exports
//! no-op derive macros and provides marker traits satisfied by every type.
//! Swapping in the real serde later requires only pointing the workspace
//! dependency back at crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

//! No-op stand-ins for serde's `Serialize` / `Deserialize` derive macros.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde façade (see `vendor/README.md`).  Nothing in the workspace
//! actually serializes — the derives exist so type definitions keep the same
//! shape they would have with real serde, making a future swap to the real
//! crates a one-line Cargo.toml change per crate.

use proc_macro::TokenStream;

/// Accepts the input item (including `#[serde(...)]` helper attributes) and
/// emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input item (including `#[serde(...)]` helper attributes) and
/// emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
